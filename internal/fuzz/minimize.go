package fuzz

import (
	"strings"

	"repro/internal/verilog"
)

// Minimize delta-debugs a diverging module down to a minimal repro.
//
// The algorithm is a greedy fixed-point loop over AST-level reductions:
// each step parses the current source, enumerates every reduction site
// (remove a module item, remove a statement, collapse an if/case/for to
// one arm, replace a compound expression by a sub-expression), applies
// one, prints the result with the canonical printer, and re-runs the
// full differential check. A reduction is kept only when the module
// still gets through the frontend AND still diverges — invalid or
// divergence-losing reductions self-reject, so the minimizer needs no
// grammar-specific validity rules. The loop restarts after every
// accepted reduction and stops when a whole pass accepts nothing.
//
// Cycles and seed must match the campaign settings that exposed the
// divergence: the repro is minimal *for that input trace*.
func Minimize(src string, cycles int, seed int64) string {
	return MinimizeWith(src, func(candidate string) bool {
		rep, err := CheckSource(candidate, cycles, seed)
		return err == nil && rep.Diverged()
	})
}

// MinimizeWith shrinks src while check keeps returning true. check
// must hold for src itself; it is the interestingness predicate of the
// delta-debugging loop (for divergence hunting, "frontend accepts AND
// backends diverge").
func MinimizeWith(src string, check func(string) bool) string {
	if !check(src) {
		// Not a divergence under these settings; nothing to shrink.
		return src
	}
	cur := canonical(src)
	if !check(cur) {
		// Canonical printing itself lost the divergence (it shouldn't,
		// but never ship a non-repro): fall back to the raw source.
		return src
	}
	for {
		reduced := false
		n := countReductions(cur)
		for k := 0; k < n; k++ {
			cand, ok := applyReduction(cur, k)
			if !ok || cand == cur {
				continue
			}
			if check(cand) {
				cur = cand
				reduced = true
				break // restart: the site numbering has shifted
			}
		}
		if !reduced {
			return cur
		}
	}
}

// canonical round-trips src through the parser and printer.
func canonical(src string) string {
	file, diags := verilog.Parse(src)
	if diags.HasErrors() {
		return src
	}
	return verilog.Format(file)
}

// countReductions returns how many reduction sites src offers.
func countReductions(src string) int {
	file, diags := verilog.Parse(src)
	if diags.HasErrors() {
		return 0
	}
	r := &reducer{target: -1}
	r.file(file)
	return r.count
}

// applyReduction parses src, applies the k-th reduction, and prints
// the result. ok is false when the parse fails or k is out of range.
func applyReduction(src string, k int) (string, bool) {
	file, diags := verilog.Parse(src)
	if diags.HasErrors() {
		return "", false
	}
	r := &reducer{target: k}
	r.file(file)
	if !r.done {
		return "", false
	}
	return verilog.Format(file), true
}

// reducer walks the AST in a fixed order, counting reduction sites;
// when the counter hits target the mutation is applied in place.
type reducer struct {
	target int // -1 = count only
	count  int
	done   bool
}

// hit advances the site counter and reports whether this site is the
// one to mutate.
func (r *reducer) hit() bool {
	idx := r.count
	r.count++
	if idx == r.target && !r.done {
		r.done = true
		return true
	}
	return false
}

func (r *reducer) file(f *verilog.SourceFile) {
	for _, m := range f.Modules {
		r.module(m)
	}
}

func (r *reducer) module(m *verilog.Module) {
	// Drop one port (body references self-reject via sema).
	for i := range m.Ports {
		if r.hit() {
			m.Ports = append(m.Ports[:i], m.Ports[i+1:]...)
			return
		}
	}
	// Drop one module item.
	for i := range m.Items {
		if r.hit() {
			m.Items = append(m.Items[:i], m.Items[i+1:]...)
			return
		}
	}
	for _, item := range m.Items {
		switch it := item.(type) {
		case *verilog.AlwaysBlock:
			r.stmt(&it.Body)
		case *verilog.InitialBlock:
			r.stmt(&it.Body)
		case *verilog.AssignItem:
			r.expr(&it.RHS)
		case *verilog.Decl:
			for i := range it.Names {
				if it.Names[i].Init != nil {
					r.expr(&it.Names[i].Init)
				}
			}
		}
	}
}

// stmt visits a statement slot: offers to replace the statement with a
// simpler one, then recurses.
func (r *reducer) stmt(slot *verilog.Stmt) {
	switch st := (*slot).(type) {
	case *verilog.BlockStmt:
		for i := range st.Decls {
			if r.hit() {
				st.Decls = append(st.Decls[:i], st.Decls[i+1:]...)
				return
			}
		}
		for i := range st.Stmts {
			if r.hit() {
				st.Stmts = append(st.Stmts[:i], st.Stmts[i+1:]...)
				return
			}
		}
		for i := range st.Stmts {
			r.stmt(&st.Stmts[i])
		}
	case *verilog.AssignStmt:
		r.expr(&st.RHS)
		r.expr(&st.LHS)
	case *verilog.IfStmt:
		if r.hit() {
			*slot = st.Then
			return
		}
		if st.Else != nil {
			if r.hit() {
				*slot = st.Else
				return
			}
			if r.hit() {
				st.Else = nil
				return
			}
		}
		r.expr(&st.Cond)
		r.stmt(&st.Then)
		if st.Else != nil {
			r.stmt(&st.Else)
		}
	case *verilog.CaseStmt:
		for i := range st.Items {
			if r.hit() {
				*slot = st.Items[i].Body
				return
			}
		}
		for i := range st.Items {
			if len(st.Items) > 1 && r.hit() {
				st.Items = append(st.Items[:i], st.Items[i+1:]...)
				return
			}
		}
		r.expr(&st.Subject)
		for i := range st.Items {
			r.stmt(&st.Items[i].Body)
		}
	case *verilog.ForStmt:
		if r.hit() {
			*slot = st.Body
			return
		}
		r.expr(&st.Cond)
		r.stmt(&st.Body)
	}
}

// expr visits an expression slot: offers to replace the expression
// with one of its sub-expressions, then recurses.
func (r *reducer) expr(slot *verilog.Expr) {
	switch e := (*slot).(type) {
	case *verilog.Unary:
		if r.hit() {
			*slot = e.X
			return
		}
		r.expr(&e.X)
	case *verilog.Binary:
		if r.hit() {
			*slot = e.X
			return
		}
		if r.hit() {
			*slot = e.Y
			return
		}
		r.expr(&e.X)
		r.expr(&e.Y)
	case *verilog.Ternary:
		if r.hit() {
			*slot = e.Then
			return
		}
		if r.hit() {
			*slot = e.Else
			return
		}
		r.expr(&e.Cond)
		r.expr(&e.Then)
		r.expr(&e.Else)
	case *verilog.Concat:
		for i := range e.Elems {
			if r.hit() {
				*slot = e.Elems[i]
				return
			}
		}
		for i := range e.Elems {
			r.expr(&e.Elems[i])
		}
	case *verilog.Repl:
		if r.hit() {
			*slot = e.Value
			return
		}
		r.expr(&e.Value)
	case *verilog.Index:
		if r.hit() {
			*slot = e.X
			return
		}
		r.expr(&e.Idx)
	case *verilog.Slice:
		if r.hit() {
			*slot = e.X
			return
		}
		r.expr(&e.Hi)
		r.expr(&e.Lo)
	case *verilog.Call:
		if len(e.Args) == 1 {
			if r.hit() {
				*slot = e.Args[0]
				return
			}
		}
		for i := range e.Args {
			r.expr(&e.Args[i])
		}
	}
}

// LineCount reports how many non-blank lines a module occupies — the
// acceptance metric for "minimal repro" (<20 lines).
func LineCount(src string) int {
	n := 0
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}
