// Package fuzz generates hazard-biased Verilog modules, runs them
// differentially through the compiled engine and the tree-walker via
// the shared sim diff path, and delta-debugs any diverging module down
// to a minimal repro emitted as a ready-to-paste Go test case.
//
// The generator is seeded and size-bounded: the same seed always yields
// the same module, so a campaign over a seed range is exactly
// reproducible (CI runs a fixed range; failures replay locally with
// cmd/fuzz -seed). Rather than sampling the whole grammar uniformly it
// is biased toward the constructs where the two backends have
// historically disagreed: aliasing part-select stores, blocking/NBA
// mixes inside one block, shared loop-variable names across same-edge
// blocks, dynamic indices, and multi-driven variables.
package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/inject"
)

// GenConfig bounds the generated module's size.
type GenConfig struct {
	// MaxBlocks caps the number of always blocks. Zero defaults to 3.
	MaxBlocks int
	// MaxStmts caps the statements per block. Zero defaults to 4.
	MaxStmts int
	// MutateProb is the probability of layering one inject.Hazards()
	// mutator on top of the generated module, in [0,1]. Negative
	// disables mutation; zero defaults to 0.5.
	MutateProb float64
	// AliasBias, in (0,1], redraws that fraction of non-hazard statement
	// picks into the alias-hazard shapes (self-aliasing slice stores,
	// shared-loop-variable dynamic indexing) the analyzer's L010 rule
	// models. Zero — the default — draws no extra random numbers, so the
	// generated stream is byte-identical to earlier campaigns and CI
	// replays stay valid.
	AliasBias float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxBlocks == 0 {
		c.MaxBlocks = 3
	}
	if c.MaxStmts == 0 {
		c.MaxStmts = 4
	}
	if c.MutateProb == 0 {
		c.MutateProb = 0.5
	}
	return c
}

// Generate produces one module from seed under the default bounds.
func Generate(seed int64) string {
	return GenerateWith(seed, GenConfig{})
}

// GenerateWith produces one module from seed under cfg. The output is
// deterministic in (seed, cfg).
func GenerateWith(seed int64, cfg GenConfig) string {
	cfg = cfg.withDefaults()
	g := &generator{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	src := g.module()
	if cfg.MutateProb > 0 && g.rng.Float64() < cfg.MutateProb {
		muts := inject.Hazards()
		m := muts[g.rng.Intn(len(muts))]
		if out, _, ok := m.Apply(src, g.rng); ok {
			src = out
		}
	}
	return src
}

type signal struct {
	name  string
	width int
	isReg bool
}

type generator struct {
	rng *rand.Rand
	cfg GenConfig

	inputs   []signal
	outputs  []signal
	internal []signal
	// combDriven marks signals a combinational block drives. Wire
	// inits and comb-block expressions must not read them: a comb
	// process reading another comb process's output (or its own) can
	// have several valid fixpoints, and the walker's declaration-order
	// settle and the engine's topo-order settle may legitimately pick
	// different ones. Clocked state is fair game everywhere.
	combDriven map[string]bool
	// restricted is set while generating comb-block bodies and wire
	// inits; readable() then drops comb-driven signals from the pool.
	restricted bool
}

// combExpr emits an expression for a continuous-assign context: the
// readable pool excludes comb-driven signals for the duration.
func (g *generator) combExpr(depth int) string {
	g.restricted = true
	defer func() { g.restricted = false }()
	return g.expr(depth)
}

func (g *generator) width() int {
	// Bias toward widths that straddle interesting boundaries: 1,
	// sub-byte, byte, and just past a word boundary on occasion.
	switch g.rng.Intn(10) {
	case 0:
		return 1
	case 1, 2:
		return 2 + g.rng.Intn(3) // 2..4
	case 3, 4, 5, 6:
		return 5 + g.rng.Intn(8) // 5..12
	case 7, 8:
		return 16
	default:
		return 33 + g.rng.Intn(32) // multi-word vectors
	}
}

// blockPlan fixes a block's kind and target before any body text is
// generated, so combDriven is complete when expressions are drawn.
type blockPlan struct {
	clocked bool
	tgt     signal
}

func (g *generator) module() string {
	g.combDriven = map[string]bool{}
	g.inputs = []signal{{name: "clk", width: 1}}
	nin := 2 + g.rng.Intn(2)
	for i := 0; i < nin; i++ {
		g.inputs = append(g.inputs, signal{name: fmt.Sprintf("d%d", i), width: g.width()})
	}
	nout := 1 + g.rng.Intn(3)
	for i := 0; i < nout; i++ {
		g.outputs = append(g.outputs, signal{name: fmt.Sprintf("q%d", i), width: g.width(), isReg: true})
	}

	// Plan every block first. Targets are segregated by kind: one
	// signal never gets both a comb and a clocked driver (that mix is
	// another order-ambiguity source), but two same-kind blocks may
	// share a target to exercise multi-driver block ordering.
	nblk := 1 + g.rng.Intn(g.cfg.MaxBlocks)
	plans := make([]blockPlan, nblk)
	owned := map[string]bool{} // target -> clocked?
	for i := range plans {
		clocked := g.rng.Intn(3) != 0
		tgt, ok := g.target(clocked, owned)
		if !ok {
			// Every output is owned by the other kind; join it.
			clocked = !clocked
			tgt, _ = g.target(clocked, owned)
		}
		plans[i] = blockPlan{clocked: clocked, tgt: tgt}
		if !clocked {
			g.combDriven[tgt.name] = true
		}
	}

	var b strings.Builder
	b.WriteString("module fz(")
	for i, in := range g.inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("input ")
		b.WriteString(rangeOf(in.width))
		b.WriteString(in.name)
	}
	for _, out := range g.outputs {
		b.WriteString(", output reg ")
		b.WriteString(rangeOf(out.width))
		b.WriteString(out.name)
	}
	b.WriteString(");\n")

	// Module-level loop variable, shared by name across blocks — the
	// per-block scoping hazard needs this to live at module scope.
	b.WriteString("\tinteger i;\n")

	// A couple of internal nets for assign chains and extra state.
	// Their inits are continuous assigns, so they draw from the same
	// restricted pool as comb blocks (no comb-driven reads) and are
	// published only after their init is generated (no self-reads).
	nw := g.rng.Intn(3)
	for i := 0; i < nw; i++ {
		s := signal{name: fmt.Sprintf("t%d", i), width: g.width()}
		init := g.combExpr(2)
		g.internal = append(g.internal, s)
		b.WriteString("\twire ")
		b.WriteString(rangeOf(s.width))
		b.WriteString(s.name)
		b.WriteString(" = ")
		b.WriteString(init)
		b.WriteString(";\n")
	}

	for _, plan := range plans {
		g.block(&b, plan)
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func rangeOf(w int) string {
	if w == 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", w-1)
}

// readable returns the pool of signals legal on a RHS. In restricted
// mode (comb bodies, wire inits) comb-driven signals are excluded.
func (g *generator) readable() []signal {
	pool := make([]signal, 0, len(g.inputs)+len(g.internal)+len(g.outputs))
	pool = append(pool, g.inputs[1:]...) // skip clk
	pool = append(pool, g.internal...)
	for _, o := range g.outputs {
		if g.restricted && g.combDriven[o.name] {
			continue
		}
		pool = append(pool, o)
	}
	return pool
}

// target picks an output reg for a block, preferring one no block owns
// yet; it sometimes reuses an owned one to exercise multi-driver block
// ordering, but only within the same kind (comb with comb, clocked
// with clocked).
func (g *generator) target(clocked bool, owned map[string]bool) (signal, bool) {
	var free, sameKind []signal
	for _, o := range g.outputs {
		wasClocked, taken := owned[o.name]
		if !taken {
			free = append(free, o)
		} else if wasClocked == clocked {
			sameKind = append(sameKind, o)
		}
	}
	pick := func(s signal) (signal, bool) {
		owned[s.name] = clocked
		return s, true
	}
	if len(free) > 0 && (len(sameKind) == 0 || g.rng.Intn(4) != 0) {
		return pick(free[g.rng.Intn(len(free))])
	}
	if len(sameKind) > 0 {
		return pick(sameKind[g.rng.Intn(len(sameKind))])
	}
	return signal{}, false
}

func (g *generator) block(b *strings.Builder, plan blockPlan) {
	if plan.clocked {
		b.WriteString("\talways @(posedge clk) begin\n")
	} else {
		b.WriteString("\talways @(*) begin\n")
		g.restricted = true
		defer func() { g.restricted = false }()
	}
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(b, plan.tgt, plan.clocked, 2)
	}
	b.WriteString("\tend\n")
}

func (g *generator) stmt(b *strings.Builder, tgt signal, clocked bool, depth int) {
	ind := strings.Repeat("\t", depth)
	// Clocked blocks mix = and <=; combinational blocks must stay
	// blocking to keep settling well-defined.
	op := "="
	if clocked && g.rng.Intn(2) == 0 {
		op = "<="
	}
	pick := g.rng.Intn(10)
	if g.cfg.AliasBias > 0 && pick >= 6 && g.rng.Float64() < g.cfg.AliasBias {
		// Biased campaign: fold a non-hazard draw back into the
		// alias-hazard statement range.
		pick = g.rng.Intn(6)
	}
	switch {
	case pick < 3 && tgt.width >= 3:
		// Hazard: whole store followed by a self-aliasing slice store.
		lo := 1 + g.rng.Intn(tgt.width-2)
		hi := lo + g.rng.Intn(tgt.width-lo)
		fmt.Fprintf(b, "%s%s = %s;\n", ind, tgt.name, g.expr(2))
		fmt.Fprintf(b, "%s%s[%d:%d] %s %s;\n", ind, tgt.name, hi, lo, op, tgt.name)
	case pick < 5 && tgt.width >= 4:
		// Hazard: for loop over the shared module-level i with the
		// loop var as a dynamic store index.
		bound := 2 + g.rng.Intn(tgt.width-2)
		src := g.pickReadable()
		fmt.Fprintf(b, "%sfor (i = 0; i < %d; i = i + 1)\n", ind, bound)
		if src.width >= bound {
			fmt.Fprintf(b, "%s\t%s[i] %s %s[i];\n", ind, tgt.name, op, src.name)
		} else {
			fmt.Fprintf(b, "%s\t%s[i] %s %s[0];\n", ind, tgt.name, op, src.name)
		}
	case pick < 6:
		// Hazard: dynamic part-select store with a variable base.
		w := 1 + g.rng.Intn(4)
		if tgt.width > w {
			idx := g.pickReadable()
			fmt.Fprintf(b, "%s%s[%s %s 3 +: %d] %s %s;\n",
				ind, tgt.name, idx.name, []string{"&", "%"}[g.rng.Intn(2)], w, op, g.expr(1))
		} else {
			fmt.Fprintf(b, "%s%s %s %s;\n", ind, tgt.name, op, g.expr(2))
		}
	case pick < 8:
		// begin/end even for single statements: the line-based hazard
		// mutators may insert a statement after either branch.
		fmt.Fprintf(b, "%sif (%s) begin\n%s\t%s %s %s;\n%send else begin\n%s\t%s %s %s;\n%send\n",
			ind, g.expr(1), ind, tgt.name, op, g.expr(2), ind, ind, tgt.name, op, g.expr(2), ind)
	default:
		fmt.Fprintf(b, "%s%s %s %s;\n", ind, tgt.name, op, g.expr(2))
	}
}

func (g *generator) pickReadable() signal {
	pool := g.readable()
	return pool[g.rng.Intn(len(pool))]
}

// ternaryBranches emits two expressions the engine sees as the same
// width. Branch widths are context-sensitive (idents widen to the
// surrounding expression, part-selects keep their own width), so both
// branches must be the same syntactic class: two w-bit slices when any
// signal is wide enough, else two sized literals.
func (g *generator) ternaryBranches(w int) (string, string) {
	var wide []signal
	for _, s := range g.readable() {
		if s.width >= w {
			wide = append(wide, s)
		}
	}
	if len(wide) > 0 {
		slice := func() string {
			s := wide[g.rng.Intn(len(wide))]
			lo := g.rng.Intn(s.width - w + 1)
			return fmt.Sprintf("%s[%d:%d]", s.name, lo+w-1, lo)
		}
		return slice(), slice()
	}
	lit := func() string {
		return fmt.Sprintf("%d'h%x", w, g.rng.Intn(1<<uint(min(w, 16))))
	}
	return lit(), lit()
}

// expr emits a random expression with the given depth budget.
func (g *generator) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		// Leaf: signal, sliced signal, or literal.
		switch g.rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%d'h%x", 4+g.rng.Intn(12), g.rng.Intn(256))
		case 1:
			s := g.pickReadable()
			if s.width >= 3 {
				lo := g.rng.Intn(s.width - 1)
				hi := lo + g.rng.Intn(s.width-lo)
				return fmt.Sprintf("%s[%d:%d]", s.name, hi, lo)
			}
			return s.name
		default:
			return g.pickReadable().name
		}
	}
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(~%s)", g.expr(depth-1))
	case 1:
		s := g.pickReadable()
		idx := g.pickReadable()
		if s.width >= 2 {
			// Dynamic bit-select; masked so most reads land in range.
			return fmt.Sprintf("%s[%s & %d]", s.name, idx.name, s.width-1)
		}
		return s.name
	case 2:
		return fmt.Sprintf("{%s, %s}", g.expr(depth-1), g.expr(depth-1))
	case 3:
		// The compiled engine rejects ternaries whose branches have
		// different widths (walker-fallback territory, which a
		// differential campaign wants to avoid), so pin both branches
		// to one width.
		w := 2 + g.rng.Intn(8)
		a, b := g.ternaryBranches(w)
		return fmt.Sprintf("(%s ? %s : %s)", g.expr(0), a, b)
	default:
		ops := []string{"+", "-", "&", "|", "^", ">>", "<<"}
		op := ops[g.rng.Intn(len(ops))]
		if op == ">>" || op == "<<" {
			return fmt.Sprintf("(%s %s %d)", g.expr(depth-1), op, g.rng.Intn(5))
		}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
	}
}
