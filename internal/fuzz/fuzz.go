package fuzz

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analyze"
	"repro/internal/diag"
	"repro/internal/sim"
	"repro/internal/wave"
)

// Options configures one differential campaign.
type Options struct {
	// Seed is the first generator seed; module n uses Seed+n.
	Seed int64
	// Count is the number of modules to generate and check.
	Count int
	// Cycles is the number of input vectors per module. Zero defaults
	// to 12.
	Cycles int
	// Minimize shrinks every diverging module to a minimal repro.
	Minimize bool
	// Gen bounds the generator; zero value uses defaults.
	Gen GenConfig
	// Progress, when non-nil, receives a line every ProgressEvery
	// modules (and at the end).
	Progress      func(done int, stats Stats)
	ProgressEvery int
	// Coverage turns on coverage guidance: every checked module's
	// engine-side toggle/activity signature is unioned into a corpus
	// signature, and modules that add new coverage points are admitted
	// to the corpus (Stats.Corpus, Stats.CoveragePoints).
	Coverage bool
	// CoverageLog, when non-nil with Coverage on, receives a line for
	// every corpus admission — the campaign's coverage-growth trail.
	CoverageLog func(line string)
}

// Divergence records one walker-vs-engine disagreement found by a
// campaign.
type Divergence struct {
	Seed     int64  // generator seed that produced the module
	Cycles   int    // input vectors the diverging run used (replay key)
	Source   string // the generated (pre-minimization) module
	Mismatch string // first mismatch, human-readable
	// Minimized is the shrunk module (equal to Source when
	// minimization is off or failed to reduce).
	Minimized string
	// TestCase is a ready-to-paste engine_regress_test.go table entry.
	TestCase string
	// AliasFindings is how many alias-hazard findings (rule L010) the
	// static analyzer reports on Source. The alias rule is a static
	// oracle for the divergence classes the generator aims at: a
	// divergence on an analyzer-clean module (AnalyzerClean, zero
	// findings) escaped both the static model and the generator's intent
	// and is a high-priority find.
	AliasFindings int
	AnalyzerClean bool
}

// Priority labels a find for triage: "high" when the static alias
// oracle saw nothing wrong with the module, "normal" otherwise.
func (d Divergence) Priority() string {
	if d.AnalyzerClean {
		return "high"
	}
	return "normal"
}

// Stats summarizes a campaign.
type Stats struct {
	Generated int // modules produced
	Checked   int // modules that compiled on both backends and ran
	Skipped   int // frontend/compile rejections (generator misses)
	Diverged  int
	// CleanDiverged counts divergences on modules the alias-hazard
	// analyzer rule found nothing wrong with (high-priority finds).
	CleanDiverged int
	Elapsed       time.Duration
	// Coverage-guided campaign tallies (zero unless Options.Coverage):
	// Corpus counts admitted modules, CoveragePoints the corpus
	// signature's set bits. CoverageOn marks that guidance ran, so
	// String only grows new fields when the mode is on.
	Corpus         int
	CoveragePoints int
	CoverageOn     bool
}

// Rate returns modules checked per second.
func (s Stats) Rate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Generated) / s.Elapsed.Seconds()
}

func (s Stats) String() string {
	base := fmt.Sprintf("generated=%d checked=%d skipped=%d diverged=%d (clean=%d) elapsed=%s rate=%.0f/s",
		s.Generated, s.Checked, s.Skipped, s.Diverged, s.CleanDiverged, s.Elapsed.Round(time.Millisecond), s.Rate())
	if s.CoverageOn {
		base += fmt.Sprintf(" corpus=%d coverage=%d", s.Corpus, s.CoveragePoints)
	}
	return base
}

// Run executes the campaign and returns its stats plus every
// divergence found, in seed order.
func Run(opts Options) (Stats, []Divergence) {
	if opts.Cycles <= 0 {
		opts.Cycles = 12
	}
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = 1000
	}
	start := time.Now()
	var stats Stats
	var finds []Divergence
	stats.CoverageOn = opts.Coverage
	var corpus wave.Signature
	for n := 0; n < opts.Count; n++ {
		seed := opts.Seed + int64(n)
		src := GenerateWith(seed, opts.Gen)
		stats.Generated++
		var cov *wave.Coverage
		if opts.Coverage {
			cov = wave.NewCoverage()
		}
		rep, err := CheckSourceCov(src, opts.Cycles, seed, cov)
		if err != nil {
			stats.Skipped++
			continue
		}
		stats.Checked++
		if cov != nil {
			// Corpus admission: keep the module when its signature adds
			// coverage points no earlier module exercised.
			if sig := cov.Signature(); corpus.Union(sig) {
				stats.Corpus++
				prev := stats.CoveragePoints
				stats.CoveragePoints = corpus.Count()
				if opts.CoverageLog != nil {
					opts.CoverageLog(fmt.Sprintf("corpus+ seed=%d coverage=%d (+%d)",
						seed, stats.CoveragePoints, stats.CoveragePoints-prev))
				}
			}
		}
		if opts.Progress != nil && (n+1)%opts.ProgressEvery == 0 {
			stats.Elapsed = time.Since(start)
			opts.Progress(n+1, stats)
		}
		if !rep.Diverged() {
			continue
		}
		stats.Diverged++
		div := Divergence{
			Seed:      seed,
			Cycles:    opts.Cycles,
			Source:    src,
			Mismatch:  rep.First().String(),
			Minimized: src,
			// Cross-check against the static alias oracle: the analyzer
			// only runs on divergences, so the campaign's generation and
			// input RNG streams are untouched.
			AliasFindings: len(AliasFindingsFor(src)),
		}
		div.AnalyzerClean = div.AliasFindings == 0
		if div.AnalyzerClean {
			stats.CleanDiverged++
		}
		if opts.Minimize {
			div.Minimized = Minimize(src, opts.Cycles, seed)
		}
		div.TestCase = TestCase(fmt.Sprintf("fuzz_seed_%d", seed), div.Minimized, opts.Cycles, seed)
		finds = append(finds, div)
	}
	stats.Elapsed = time.Since(start)
	if opts.Progress != nil && opts.Count%opts.ProgressEvery != 0 {
		opts.Progress(opts.Count, stats)
	}
	return stats, finds
}

// AliasFindingsFor runs only the alias-hazard analyzer rule (L010) over
// a module — the static side of the campaign's cross-check oracle.
func AliasFindingsFor(src string) diag.List {
	return analyze.Source(src, analyze.Options{Rules: []string{"L010"}})
}

// CheckSource runs one module through the shared differential path.
// The error marks a frontend/compile rejection (campaigns count it as
// a skip); divergence is reported via the DiffReport.
func CheckSource(src string, cycles int, seed int64) (*sim.DiffReport, error) {
	return CheckSourceCov(src, cycles, seed, nil)
}

// CheckSourceCov is CheckSource with optional toggle-coverage
// accumulation from the engine side of the differential run.
func CheckSourceCov(src string, cycles int, seed int64, cov *wave.Coverage) (*sim.DiffReport, error) {
	return sim.DiffSource(src, sim.DiffConfig{
		Clock:    DetectClock(src),
		Cycles:   cycles,
		Seed:     seed,
		Coverage: cov,
	})
}

// CaptureVCD re-runs one module through the differential path with a
// waveform recorder attached and returns the VCD text, windowed around
// the first engine/oracle divergence when one occurs (full bounded
// trace otherwise). Used by fuzz -vcd to ship a wave dump next to each
// minimized repro.
func CaptureVCD(src string, cycles int, seed int64, window int) (string, error) {
	rec := wave.NewRecorder(window)
	if _, err := sim.DiffSource(src, sim.DiffConfig{
		Clock:    DetectClock(src),
		Cycles:   cycles,
		Seed:     seed,
		Recorder: rec,
	}); err != nil {
		return "", err
	}
	return rec.VCD(), nil
}

// DetectClock returns "clk" when the module declares a clk input, else
// "" (purely combinational drive).
func DetectClock(src string) string {
	if strings.Contains(src, "input clk") || strings.Contains(src, "input wire clk") {
		return "clk"
	}
	return ""
}

// TestCase renders a module as a table entry for TestEngineRegressions
// in internal/sim/engine_regress_test.go — paste it into the cases
// slice verbatim.
func TestCase(name, src string, cycles int, seed int64) string {
	clock := DetectClock(src)
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "\tname: %q, clock: %q, cycles: %d, seed: %d,\n", name, clock, cycles, seed)
	b.WriteString("\tsrc: `\n")
	b.WriteString(strings.ReplaceAll(strings.TrimRight(src, "\n"), "`", "\\x60"))
	b.WriteString("`,\n},")
	return b.String()
}
