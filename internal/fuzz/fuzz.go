package fuzz

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analyze"
	"repro/internal/diag"
	"repro/internal/sim"
)

// Options configures one differential campaign.
type Options struct {
	// Seed is the first generator seed; module n uses Seed+n.
	Seed int64
	// Count is the number of modules to generate and check.
	Count int
	// Cycles is the number of input vectors per module. Zero defaults
	// to 12.
	Cycles int
	// Minimize shrinks every diverging module to a minimal repro.
	Minimize bool
	// Gen bounds the generator; zero value uses defaults.
	Gen GenConfig
	// Progress, when non-nil, receives a line every ProgressEvery
	// modules (and at the end).
	Progress      func(done int, stats Stats)
	ProgressEvery int
}

// Divergence records one walker-vs-engine disagreement found by a
// campaign.
type Divergence struct {
	Seed     int64  // generator seed that produced the module
	Source   string // the generated (pre-minimization) module
	Mismatch string // first mismatch, human-readable
	// Minimized is the shrunk module (equal to Source when
	// minimization is off or failed to reduce).
	Minimized string
	// TestCase is a ready-to-paste engine_regress_test.go table entry.
	TestCase string
	// AliasFindings is how many alias-hazard findings (rule L010) the
	// static analyzer reports on Source. The alias rule is a static
	// oracle for the divergence classes the generator aims at: a
	// divergence on an analyzer-clean module (AnalyzerClean, zero
	// findings) escaped both the static model and the generator's intent
	// and is a high-priority find.
	AliasFindings int
	AnalyzerClean bool
}

// Priority labels a find for triage: "high" when the static alias
// oracle saw nothing wrong with the module, "normal" otherwise.
func (d Divergence) Priority() string {
	if d.AnalyzerClean {
		return "high"
	}
	return "normal"
}

// Stats summarizes a campaign.
type Stats struct {
	Generated int // modules produced
	Checked   int // modules that compiled on both backends and ran
	Skipped   int // frontend/compile rejections (generator misses)
	Diverged  int
	// CleanDiverged counts divergences on modules the alias-hazard
	// analyzer rule found nothing wrong with (high-priority finds).
	CleanDiverged int
	Elapsed       time.Duration
}

// Rate returns modules checked per second.
func (s Stats) Rate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Generated) / s.Elapsed.Seconds()
}

func (s Stats) String() string {
	return fmt.Sprintf("generated=%d checked=%d skipped=%d diverged=%d (clean=%d) elapsed=%s rate=%.0f/s",
		s.Generated, s.Checked, s.Skipped, s.Diverged, s.CleanDiverged, s.Elapsed.Round(time.Millisecond), s.Rate())
}

// Run executes the campaign and returns its stats plus every
// divergence found, in seed order.
func Run(opts Options) (Stats, []Divergence) {
	if opts.Cycles <= 0 {
		opts.Cycles = 12
	}
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = 1000
	}
	start := time.Now()
	var stats Stats
	var finds []Divergence
	for n := 0; n < opts.Count; n++ {
		seed := opts.Seed + int64(n)
		src := GenerateWith(seed, opts.Gen)
		stats.Generated++
		rep, err := CheckSource(src, opts.Cycles, seed)
		if err != nil {
			stats.Skipped++
			continue
		}
		stats.Checked++
		if opts.Progress != nil && (n+1)%opts.ProgressEvery == 0 {
			stats.Elapsed = time.Since(start)
			opts.Progress(n+1, stats)
		}
		if !rep.Diverged() {
			continue
		}
		stats.Diverged++
		div := Divergence{
			Seed:      seed,
			Source:    src,
			Mismatch:  rep.First().String(),
			Minimized: src,
			// Cross-check against the static alias oracle: the analyzer
			// only runs on divergences, so the campaign's generation and
			// input RNG streams are untouched.
			AliasFindings: len(AliasFindingsFor(src)),
		}
		div.AnalyzerClean = div.AliasFindings == 0
		if div.AnalyzerClean {
			stats.CleanDiverged++
		}
		if opts.Minimize {
			div.Minimized = Minimize(src, opts.Cycles, seed)
		}
		div.TestCase = TestCase(fmt.Sprintf("fuzz_seed_%d", seed), div.Minimized, opts.Cycles, seed)
		finds = append(finds, div)
	}
	stats.Elapsed = time.Since(start)
	if opts.Progress != nil && opts.Count%opts.ProgressEvery != 0 {
		opts.Progress(opts.Count, stats)
	}
	return stats, finds
}

// AliasFindingsFor runs only the alias-hazard analyzer rule (L010) over
// a module — the static side of the campaign's cross-check oracle.
func AliasFindingsFor(src string) diag.List {
	return analyze.Source(src, analyze.Options{Rules: []string{"L010"}})
}

// CheckSource runs one module through the shared differential path.
// The error marks a frontend/compile rejection (campaigns count it as
// a skip); divergence is reported via the DiffReport.
func CheckSource(src string, cycles int, seed int64) (*sim.DiffReport, error) {
	return sim.DiffSource(src, sim.DiffConfig{
		Clock:  DetectClock(src),
		Cycles: cycles,
		Seed:   seed,
	})
}

// DetectClock returns "clk" when the module declares a clk input, else
// "" (purely combinational drive).
func DetectClock(src string) string {
	if strings.Contains(src, "input clk") || strings.Contains(src, "input wire clk") {
		return "clk"
	}
	return ""
}

// TestCase renders a module as a table entry for TestEngineRegressions
// in internal/sim/engine_regress_test.go — paste it into the cases
// slice verbatim.
func TestCase(name, src string, cycles int, seed int64) string {
	clock := DetectClock(src)
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "\tname: %q, clock: %q, cycles: %d, seed: %d,\n", name, clock, cycles, seed)
	b.WriteString("\tsrc: `\n")
	b.WriteString(strings.ReplaceAll(strings.TrimRight(src, "\n"), "`", "\\x60"))
	b.WriteString("`,\n},")
	return b.String()
}
