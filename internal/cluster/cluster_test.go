package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestShingles(t *testing.T) {
	s := Shingles("assign y = a & b ;", 2)
	if _, ok := s["assign y"]; !ok {
		t.Errorf("missing shingle 'assign y': %v", s)
	}
	if _, ok := s["& b"]; !ok {
		t.Errorf("missing shingle '& b': %v", s)
	}
}

func TestShinglesShortInput(t *testing.T) {
	s := Shingles("assign", 4)
	if len(s) != 1 {
		t.Fatalf("short input should produce one shingle: %v", s)
	}
	if len(Shingles("", 3)) != 0 {
		t.Fatal("empty input should produce no shingles")
	}
}

func TestJaccardBasics(t *testing.T) {
	a := Shingles("assign y = a & b;", 2)
	if Jaccard(a, a) != 1 {
		t.Error("self similarity must be 1")
	}
	b := Shingles("always @(posedge clk) q <= d;", 2)
	if sim := Jaccard(a, b); sim > 0.2 {
		t.Errorf("unrelated code similarity %.2f too high", sim)
	}
	if Jaccard(map[string]struct{}{}, map[string]struct{}{}) != 1 {
		t.Error("two empty sets are identical by definition")
	}
}

func TestJaccardSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		a := randSet(rng)
		b := randSet(rng)
		if Jaccard(a, b) != Jaccard(b, a) {
			t.Fatal("Jaccard must be symmetric")
		}
		d := JaccardDistance(a, b)
		if d < 0 || d > 1 {
			t.Fatalf("distance %f out of [0,1]", d)
		}
	}
}

func randSet(rng *rand.Rand) map[string]struct{} {
	out := map[string]struct{}{}
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		out[fmt.Sprintf("tok%d", rng.Intn(30))] = struct{}{}
	}
	return out
}

// TestDBSCANTwoBlobs clusters two well-separated groups plus an outlier.
func TestDBSCANTwoBlobs(t *testing.T) {
	// 1-D points: cluster A around 0, cluster B around 10, outlier at 100.
	points := []float64{0, 0.1, 0.2, 0.3, 10, 10.1, 10.2, 100}
	dist := func(i, j int) float64 {
		d := points[i] - points[j]
		if d < 0 {
			d = -d
		}
		return d
	}
	labels := DBSCAN(len(points), dist, 0.5, 2)
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[2] != labels[3] {
		t.Errorf("cluster A fragmented: %v", labels)
	}
	if labels[4] != labels[5] || labels[5] != labels[6] {
		t.Errorf("cluster B fragmented: %v", labels)
	}
	if labels[0] == labels[4] {
		t.Errorf("clusters merged: %v", labels)
	}
	if labels[7] != Noise {
		t.Errorf("outlier not noise: %v", labels)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	points := []float64{0, 10, 20, 30}
	dist := func(i, j int) float64 {
		d := points[i] - points[j]
		if d < 0 {
			d = -d
		}
		return d
	}
	labels := DBSCAN(len(points), dist, 1, 2)
	for i, l := range labels {
		if l != Noise {
			t.Errorf("point %d should be noise, got %d", i, l)
		}
	}
}

func TestDBSCANSingleCluster(t *testing.T) {
	n := 20
	dist := func(i, j int) float64 { return 0.01 }
	labels := DBSCAN(n, dist, 0.5, 3)
	for i := 1; i < n; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("all points should share one cluster: %v", labels)
		}
	}
}

func TestDBSCANEmpty(t *testing.T) {
	labels := DBSCAN(0, func(i, j int) float64 { return 0 }, 0.5, 2)
	if len(labels) != 0 {
		t.Fatal("empty input should give empty labels")
	}
}

func TestRepresentativesOnePerClusterPlusNoise(t *testing.T) {
	points := []float64{0, 0.1, 0.2, 10, 10.1, 100}
	dist := func(i, j int) float64 {
		d := points[i] - points[j]
		if d < 0 {
			d = -d
		}
		return d
	}
	labels := DBSCAN(len(points), dist, 0.5, 2)
	reps := Representatives(labels, dist)
	// two clusters -> 2 reps, plus the noise point
	if len(reps) != 3 {
		t.Fatalf("got %d representatives (%v), want 3", len(reps), reps)
	}
	seen := map[int]bool{}
	for _, r := range reps {
		seen[labels[r]] = true
	}
	if !seen[Noise] {
		t.Error("noise point must be kept")
	}
}

// TestDBSCANDeterministic verifies stable output across runs.
func TestDBSCANDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	points := make([]float64, 40)
	for i := range points {
		points[i] = rng.Float64() * 20
	}
	dist := func(i, j int) float64 {
		d := points[i] - points[j]
		if d < 0 {
			d = -d
		}
		return d
	}
	first := DBSCAN(len(points), dist, 1.0, 3)
	second := DBSCAN(len(points), dist, 1.0, 3)
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("DBSCAN not deterministic")
		}
	}
}

// TestSimilarCodeClusters is the end-use property: near-duplicate Verilog
// fragments cluster together, distinct ones do not.
func TestSimilarCodeClusters(t *testing.T) {
	variants := []string{
		"module m(input a, output y); assign y = ~a; endmodule",
		"module m(input a, output y); assign y = ~a ; endmodule",
		"module m(input a, output y);\n assign y = ~a;\nendmodule",
		"module c(input clk, input rst, output reg [7:0] q); always @(posedge clk) q <= rst ? 0 : q + 1; endmodule",
		"module c(input clk, input rst, output reg [7:0] q); always @(posedge clk) q <= rst ? 8'h00 : q + 1; endmodule",
	}
	sets := make([]map[string]struct{}, len(variants))
	for i, v := range variants {
		sets[i] = Shingles(v, 3)
	}
	dist := func(i, j int) float64 { return JaccardDistance(sets[i], sets[j]) }
	labels := DBSCAN(len(variants), dist, 0.4, 2)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("near-duplicates split: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Errorf("counter variants split: %v", labels)
	}
	if labels[0] == labels[3] && labels[0] != Noise {
		t.Errorf("distinct circuits merged: %v", labels)
	}
}
