// Package cluster implements DBSCAN over Jaccard distance on token
// shingles. The paper's dataset-curation step uses exactly this pairing
// ("clustering using DBSCAN with Jaccard distance, grouping similar
// implementations to select representative examples", §3.4) to pick a
// diverse set of erroneous implementations for VerilogEval-syntax.
package cluster

import (
	"sort"
	"strings"
)

// Noise is the label DBSCAN assigns to points in no cluster.
const Noise = -1

// Shingles tokenizes src and returns the set of k-token shingles. Shingle
// sets are the standard representation for Jaccard similarity over code.
func Shingles(src string, k int) map[string]struct{} {
	toks := tokenize(src)
	out := map[string]struct{}{}
	if k <= 0 {
		k = 1
	}
	if len(toks) < k {
		if len(toks) > 0 {
			out[strings.Join(toks, " ")] = struct{}{}
		}
		return out
	}
	for i := 0; i+k <= len(toks); i++ {
		out[strings.Join(toks[i:i+k], " ")] = struct{}{}
	}
	return out
}

// tokenize is a lightweight code tokenizer: identifiers/numbers clump,
// punctuation splits, whitespace separates.
func tokenize(src string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			flush()
		case (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9') || c == '_' || c == '\'':
			cur.WriteByte(c)
		default:
			flush()
			toks = append(toks, string(c))
		}
	}
	flush()
	return toks
}

// Jaccard returns the Jaccard similarity |A∩B| / |A∪B| of two sets.
// Two empty sets are defined as identical (similarity 1).
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for s := range a {
		if _, ok := b[s]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardDistance returns 1 - Jaccard similarity.
func JaccardDistance(a, b map[string]struct{}) float64 { return 1 - Jaccard(a, b) }

// DBSCAN clusters n points given a pairwise distance function. eps is the
// neighbourhood radius and minPts the core-point density threshold
// (including the point itself). The result assigns each point a cluster
// id starting at 0, or Noise.
func DBSCAN(n int, dist func(i, j int) float64, eps float64, minPts int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)

	neighbours := func(p int) []int {
		var out []int
		for q := 0; q < n; q++ {
			if dist(p, q) <= eps {
				out = append(out, q)
			}
		}
		return out
	}

	cluster := 0
	for p := 0; p < n; p++ {
		if visited[p] {
			continue
		}
		visited[p] = true
		nb := neighbours(p)
		if len(nb) < minPts {
			continue // stays noise unless absorbed later
		}
		labels[p] = cluster
		// Expand cluster via a work queue.
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if labels[q] == Noise {
				labels[q] = cluster // border point
			}
			if visited[q] {
				continue
			}
			visited[q] = true
			labels[q] = cluster
			qnb := neighbours(q)
			if len(qnb) >= minPts {
				queue = append(queue, qnb...)
			}
		}
		cluster++
	}
	return labels
}

// Representatives picks one representative index per cluster (the point
// with the smallest summed distance to its cluster peers — a medoid) plus
// every noise point. This matches the paper's goal of "selecting
// representative examples while ensuring a diverse representation".
func Representatives(labels []int, dist func(i, j int) float64) []int {
	byCluster := map[int][]int{}
	for i, l := range labels {
		byCluster[l] = append(byCluster[l], i)
	}
	var out []int
	clusterIDs := make([]int, 0, len(byCluster))
	for id := range byCluster {
		clusterIDs = append(clusterIDs, id)
	}
	sort.Ints(clusterIDs)
	for _, id := range clusterIDs {
		members := byCluster[id]
		if id == Noise {
			out = append(out, members...)
			continue
		}
		best, bestSum := members[0], -1.0
		for _, i := range members {
			sum := 0.0
			for _, j := range members {
				sum += dist(i, j)
			}
			if bestSum < 0 || sum < bestSum {
				best, bestSum = i, sum
			}
		}
		out = append(out, best)
	}
	sort.Ints(out)
	return out
}
