// Package compiler wraps the Verilog frontend (parse + elaborate) behind
// the three feedback personas the paper's ablation contrasts:
//
//   - Simple   — pass/fail only; the log is the fixed instruction
//     "Correct the syntax error in the code." (§4.3.1 "Simple")
//   - IVerilog — terse open-source-style logs ("main.v:5: error: ..."),
//     with the documented failure mode of degrading to "I give up." on
//     confusing input (§4.3.1, Fig. 5 top)
//   - Quartus  — verbose commercial-style logs with error numbers,
//     explanations and fix suggestions (§4.3.1, Fig. 5 bottom)
//
// All personas share one frontend; only the log rendering and the
// information content differ. InfoScore quantifies that difference for the
// simulated LLM's localization model.
package compiler

import (
	"fmt"
	"strings"

	"repro/internal/diag"
	"repro/internal/sema"
	"repro/internal/verilog"
)

// Result is the outcome of one compilation.
type Result struct {
	// Ok is true when the source parsed and elaborated with no errors.
	Ok bool
	// Log is the persona-formatted compiler output the agent reads.
	Log string
	// Diags is the structured ground truth behind the log. The agent
	// never consumes it directly; tests, the oracle, and the simulated
	// LLM's capability model do.
	Diags diag.List
	// File is the parsed AST (always present, possibly partial).
	File *verilog.SourceFile
	// Design is the elaborated design, non-nil only when Ok.
	Design *sema.Design
}

// Compiler is one feedback persona.
type Compiler interface {
	// Name returns the persona name used in tables ("Simple",
	// "iverilog", "Quartus").
	Name() string
	// Compile runs the frontend on src and renders the persona's log.
	// filename appears in the log the way real tools echo it.
	Compile(filename, src string) Result
	// InfoScore is the information content of this persona's logs in
	// [0,1]: 0 = no information beyond pass/fail, 1 = precise location,
	// cause, and suggestion for every error. The simulated LLM's
	// localization model consumes it.
	InfoScore() float64
}

// Frontend runs parse + elaborate with the real-compiler masking rule:
// semantic analysis only runs when parsing succeeded, so parse errors hide
// the elaboration errors behind them (the cascade that makes iterative
// fixing necessary).
func Frontend(src string) (*verilog.SourceFile, *sema.Design, diag.List) {
	file, parseDiags := verilog.Parse(src)
	if parseDiags.HasErrors() {
		parseDiags.SortByPos()
		return file, nil, parseDiags
	}
	design, semaDiags := sema.Elaborate(file)
	// Copy into a fresh slice: append(parseDiags, ...) may share
	// parseDiags' backing array, which SortByPos would then mutate under
	// any caller still holding the parse diagnostics.
	all := make(diag.List, 0, len(parseDiags)+len(semaDiags))
	all = append(all, parseDiags...)
	all = append(all, semaDiags...)
	all = all.Dedupe()
	all.SortByPos()
	if all.HasErrors() {
		return file, nil, all
	}
	return file, design, all
}

// ---------- Simple ----------

// Simple is the no-feedback persona: it compiles (the loop must know when
// to stop) but reveals nothing about the errors.
type Simple struct{}

// Name implements Compiler.
func (Simple) Name() string { return "Simple" }

// InfoScore implements Compiler.
func (Simple) InfoScore() float64 { return 0.0 }

// Compile implements Compiler.
func (Simple) Compile(filename, src string) Result {
	file, design, diags := Frontend(src)
	res := Result{File: file, Design: design, Diags: diags, Ok: design != nil}
	if res.Ok {
		res.Log = "Compilation successful."
	} else {
		res.Log = "Correct the syntax error in the code."
	}
	return res
}

// ---------- iverilog ----------

// IVerilog renders terse open-source-style logs.
type IVerilog struct{}

// Name implements Compiler.
func (IVerilog) Name() string { return "iverilog" }

// InfoScore implements Compiler.
func (IVerilog) InfoScore() float64 { return 0.55 }

// giveUpThreshold is how many parse errors it takes before the persona
// abandons detailed reporting, reproducing iverilog's "I give up." mode.
const giveUpThreshold = 4

// Compile implements Compiler.
func (IVerilog) Compile(filename, src string) Result {
	file, design, diags := Frontend(src)
	res := Result{File: file, Design: design, Diags: diags, Ok: design != nil}
	if res.Ok {
		// Real iverilog is silent on success, but an empty log would leave
		// the agent with an empty Observation step; echo the filename the
		// way the error lines do.
		res.Log = fmt.Sprintf("%s: compiled successfully.\n", filename)
		return res
	}
	var b strings.Builder
	errs := diags.Errors()
	syntaxErrs := 0
	for _, d := range errs {
		if isParseCategory(d.Category) {
			syntaxErrs++
		}
	}
	if syntaxErrs >= giveUpThreshold {
		// The documented degradation: many syntax errors collapse into an
		// uninformative log.
		for i := 0; i < syntaxErrs && i < 2; i++ {
			fmt.Fprintf(&b, "%s:%d: syntax error\n", filename, errs[i].Pos.Line)
		}
		b.WriteString("I give up.\n")
		res.Log = b.String()
		return res
	}
	for _, d := range errs {
		b.WriteString(iverilogLine(filename, d))
	}
	fmt.Fprintf(&b, "%d error(s) during elaboration.\n", len(errs))
	res.Log = b.String()
	return res
}

func isParseCategory(c diag.Category) bool {
	switch c {
	case diag.CatUnexpectedToken, diag.CatMissingSemicolon,
		diag.CatUnmatchedBeginEnd, diag.CatMissingEndmodule,
		diag.CatCStyleSyntax, diag.CatMisplacedDirective,
		diag.CatKeywordAsIdent, diag.CatMalformedLiteral,
		diag.CatSensitivityList, diag.CatModuleStructure,
		diag.CatBadConcat:
		return true
	}
	return false
}

// iverilogLine renders one diagnostic in iverilog's laconic dialect. The
// phrasings mirror the logs the paper quotes in Figs. 2 and 5.
func iverilogLine(filename string, d diag.Diagnostic) string {
	loc := fmt.Sprintf("%s:%d: ", filename, d.Pos.Line)
	switch d.Category {
	case diag.CatUndeclaredIdent:
		return loc + fmt.Sprintf("error: Unable to bind wire/reg/memory `%s' in `top_module'\n", d.Symbol)
	case diag.CatInvalidLValue:
		return loc + fmt.Sprintf("error: %s is not a valid l-value in top_module.\n", d.Symbol)
	case diag.CatIndexOutOfRange:
		return loc + fmt.Sprintf("error: Index %s[...] is out of range.\n", d.Symbol)
	case diag.CatAssignToReg:
		return loc + fmt.Sprintf("error: reg %s; cannot be driven by primitives or continuous assignment.\n", d.Symbol)
	case diag.CatMissingSemicolon, diag.CatUnexpectedToken, diag.CatCStyleSyntax,
		diag.CatBadConcat, diag.CatKeywordAsIdent:
		return loc + "syntax error\n"
	case diag.CatUnmatchedBeginEnd, diag.CatMissingEndmodule:
		return loc + "syntax error\n" + loc + "error: Errors in statement block.\n"
	case diag.CatMisplacedDirective:
		return loc + "error: macro names cannot be directive keywords\n"
	case diag.CatMalformedLiteral:
		return loc + "error: Malformed statement\n"
	case diag.CatSensitivityList:
		return loc + "error: Error in event expression.\n"
	case diag.CatDuplicateDecl:
		return loc + fmt.Sprintf("error: `%s' has already been declared in this scope.\n", d.Symbol)
	case diag.CatPortMismatch:
		return loc + fmt.Sprintf("error: Port %s is not defined in module.\n", d.Symbol)
	case diag.CatNonConstantExpr:
		return loc + "error: Dimensions must be constant.\n"
	case diag.CatModuleStructure:
		return loc + "syntax error\n"
	default:
		return loc + fmt.Sprintf("error: %s\n", d.Message)
	}
}

// ---------- Quartus ----------

// Quartus renders verbose commercial-style logs with error numbers and
// suggestions.
type Quartus struct{}

// Name implements Compiler.
func (Quartus) Name() string { return "Quartus" }

// InfoScore implements Compiler.
func (Quartus) InfoScore() float64 { return 0.9 }

// quartusCode maps categories to the stable error numbers the RAG database
// keys on. 10161 (undeclared object) and 10232 (index out of range) are the
// codes the paper itself quotes; the rest follow the same numbering style.
func quartusCode(c diag.Category) int {
	switch c {
	case diag.CatUndeclaredIdent:
		return 10161
	case diag.CatIndexOutOfRange:
		return 10232
	case diag.CatInvalidLValue:
		return 10137
	case diag.CatAssignToReg:
		return 10219
	case diag.CatMissingSemicolon, diag.CatUnexpectedToken, diag.CatModuleStructure:
		return 10170
	case diag.CatUnmatchedBeginEnd, diag.CatMissingEndmodule:
		return 10171
	case diag.CatCStyleSyntax:
		return 10663
	case diag.CatMisplacedDirective:
		return 10190
	case diag.CatDuplicateDecl:
		return 10028
	case diag.CatPortMismatch:
		return 10112
	case diag.CatNonConstantExpr:
		return 10110
	case diag.CatKeywordAsIdent:
		return 10114
	case diag.CatMalformedLiteral:
		return 10120
	case diag.CatSensitivityList:
		return 10122
	case diag.CatBadConcat:
		return 10125
	case diag.CatWidthMismatch:
		return 10230
	case diag.CatInferredLatch:
		return 10240
	case diag.CatIncompleteSensitivity:
		return 10235
	case diag.CatAssignStyle:
		return 10237
	case diag.CatCombLoop:
		return 10244
	case diag.CatReadBeforeWrite:
		return 10030
	case diag.CatUnusedSignal:
		return 12241
	case diag.CatAliasHazard:
		return 10268
	default:
		return 10170
	}
}

// Compile implements Compiler.
func (Quartus) Compile(filename, src string) Result {
	file, design, diags := Frontend(src)
	res := Result{File: file, Design: design, Diags: diags, Ok: design != nil}
	var b strings.Builder
	warnings := diags.Warnings()
	errs := diags.Errors()
	if res.Ok {
		for _, w := range warnings {
			fmt.Fprintf(&b, "Warning (%d): Verilog HDL warning at %s(%d): %s\n",
				quartusCode(w.Category), filename, w.Pos.Line, w.Message)
		}
		fmt.Fprintf(&b, "Info: Quartus Prime Analysis & Synthesis was successful. 0 errors, %d warnings\n",
			len(warnings))
		res.Log = b.String()
		return res
	}
	for _, d := range errs {
		fmt.Fprintf(&b, "Error (%d): Verilog HDL error at %s(%d): %s.",
			quartusCode(d.Category), filename, d.Pos.Line, strings.TrimSuffix(d.Message, "."))
		if d.Suggestion != "" {
			fmt.Fprintf(&b, " %s", d.Suggestion)
		}
		fmt.Fprintf(&b, " File: /tmp/work/%s Line: %d\n", filename, d.Pos.Line)
	}
	for _, w := range warnings {
		fmt.Fprintf(&b, "Warning (%d): Verilog HDL warning at %s(%d): %s\n",
			quartusCode(w.Category), filename, w.Pos.Line, w.Message)
	}
	fmt.Fprintf(&b, "Error: Quartus Prime Analysis & Synthesis was unsuccessful. %d error(s), %d warning(s)\n",
		len(errs), len(warnings))
	res.Log = b.String()
	return res
}

// ByName returns the persona with the given name (case-insensitive). The
// boolean is false for unknown names.
func ByName(name string) (Compiler, bool) {
	switch strings.ToLower(name) {
	case "simple":
		return Simple{}, true
	case "iverilog":
		return IVerilog{}, true
	case "quartus":
		return Quartus{}, true
	}
	return nil, false
}

// All returns the three personas in ascending feedback-quality order, the
// order Table 1's columns use.
func All() []Compiler {
	return []Compiler{Simple{}, IVerilog{}, Quartus{}}
}
