package compiler

import (
	"strings"
	"testing"

	"repro/internal/diag"
)

// paperExample is the erroneous implementation from the paper's Fig. 5
// (task vector100r): posedge clk with no clk in the port list.
const paperExample = `module top_module (
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1) begin
			out[i] <= in[99 - i];
		end
	end
endmodule
`

const cleanExample = `module top_module (input [7:0] in, output [7:0] out);
	assign out = ~in;
endmodule
`

func TestPersonaNamesAndOrder(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("got %d personas", len(all))
	}
	names := []string{all[0].Name(), all[1].Name(), all[2].Name()}
	want := []string{"Simple", "iverilog", "Quartus"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("persona %d = %s, want %s", i, names[i], want[i])
		}
	}
	// Feedback quality must be strictly increasing — Table 1's premise.
	if !(all[0].InfoScore() < all[1].InfoScore() && all[1].InfoScore() < all[2].InfoScore()) {
		t.Error("InfoScore must increase Simple < iverilog < Quartus")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"simple", "iverilog", "Quartus", "QUARTUS"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("vcs"); ok {
		t.Error("unknown persona must not resolve")
	}
}

func TestSimplePersonaRevealsNothing(t *testing.T) {
	res := Simple{}.Compile("main.v", paperExample)
	if res.Ok {
		t.Fatal("paper example must fail to compile")
	}
	if strings.Contains(res.Log, "clk") {
		t.Fatalf("Simple log must not mention the error: %q", res.Log)
	}
	if res.Log != "Correct the syntax error in the code." {
		t.Fatalf("Simple log = %q", res.Log)
	}
}

func TestIVerilogLogStyle(t *testing.T) {
	res := IVerilog{}.Compile("vector100r.sv", paperExample)
	if res.Ok {
		t.Fatal("must fail")
	}
	if !strings.Contains(res.Log, "vector100r.sv:") {
		t.Fatalf("iverilog log must carry file:line, got: %q", res.Log)
	}
	if !strings.Contains(res.Log, "Unable to bind wire/reg/memory `clk'") {
		t.Fatalf("iverilog log should use the bind phrasing, got: %q", res.Log)
	}
	if !strings.Contains(res.Log, "error(s) during elaboration") {
		t.Fatalf("iverilog log should end with elaboration count, got: %q", res.Log)
	}
}

func TestQuartusLogStyle(t *testing.T) {
	res := Quartus{}.Compile("vector100r.sv", paperExample)
	if res.Ok {
		t.Fatal("must fail")
	}
	if !strings.Contains(res.Log, "Error (10161)") {
		t.Fatalf("Quartus log must carry error code 10161, got: %q", res.Log)
	}
	if !strings.Contains(res.Log, `object "clk" is not declared`) {
		t.Fatalf("Quartus log must describe the undeclared object, got: %q", res.Log)
	}
	if !strings.Contains(res.Log, "Verify the object name is correct") {
		t.Fatalf("Quartus log must carry the suggestion, got: %q", res.Log)
	}
	if !strings.Contains(res.Log, "Analysis & Synthesis was unsuccessful") {
		t.Fatalf("Quartus log must carry the summary line, got: %q", res.Log)
	}
}

func TestQuartusIndexOutOfRangeCode(t *testing.T) {
	src := `module m(input [255:0] q, output y);
	assign y = q[(0-1)*16 + (0-1)];
endmodule`
	res := Quartus{}.Compile("conwaylife.sv", src)
	if res.Ok {
		t.Fatal("must fail")
	}
	if !strings.Contains(res.Log, "Error (10232)") {
		t.Fatalf("index error must use code 10232 (paper Fig. 6), got: %q", res.Log)
	}
	if !strings.Contains(res.Log, "cannot fall outside the declared range") {
		t.Fatalf("message should match the paper's phrasing, got: %q", res.Log)
	}
}

func TestIVerilogGivesUp(t *testing.T) {
	// A file full of parse errors triggers the documented "I give up."
	// degradation.
	src := `module m(input a, output y);
	assign y = ;
	assign = a;
	always @) begin
	foo bar baz;
	assign y { a;
endmodule`
	res := IVerilog{}.Compile("main.v", src)
	if res.Ok {
		t.Fatal("must fail")
	}
	if !strings.Contains(res.Log, "I give up.") {
		t.Fatalf("expected give-up log, got: %q", res.Log)
	}
}

func TestQuartusNeverGivesUp(t *testing.T) {
	src := `module m(input a, output y);
	assign y = ;
	assign = a;
	always @) begin
	foo bar baz;
endmodule`
	res := Quartus{}.Compile("main.v", src)
	if res.Ok {
		t.Fatal("must fail")
	}
	if strings.Contains(res.Log, "I give up.") {
		t.Fatal("Quartus persona must not degrade")
	}
	if !strings.Contains(res.Log, "Error (") {
		t.Fatalf("Quartus must still report coded errors, got %q", res.Log)
	}
}

func TestAllPersonasAgreeOnPassFail(t *testing.T) {
	for _, c := range All() {
		if res := c.Compile("main.v", cleanExample); !res.Ok {
			t.Errorf("%s rejects clean code: %s", c.Name(), res.Log)
		}
		if res := c.Compile("main.v", paperExample); res.Ok {
			t.Errorf("%s accepts broken code", c.Name())
		}
	}
}

func TestFrontendMasksSemaBehindParseErrors(t *testing.T) {
	// The cascade rule: with a parse error present, the undeclared 'clk'
	// must NOT be reported yet; fixing the parse error reveals it.
	src := `module m(input d, output reg q);
	always @(posedge clk)
		q <= d
endmodule`
	_, _, diags := Frontend(src)
	if !diags.HasErrors() {
		t.Fatal("must fail")
	}
	for _, d := range diags {
		if d.Category == diag.CatUndeclaredIdent {
			t.Fatal("sema errors must be masked by parse errors")
		}
	}
	// After fixing the semicolon the clk error surfaces.
	fixed := strings.Replace(src, "q <= d", "q <= d;", 1)
	_, _, diags2 := Frontend(fixed)
	found := false
	for _, d := range diags2 {
		if d.Category == diag.CatUndeclaredIdent {
			found = true
		}
	}
	if !found {
		t.Fatal("fixing the parse error must reveal the sema error")
	}
}

func TestResultDiagsCarryGroundTruth(t *testing.T) {
	res := Quartus{}.Compile("main.v", paperExample)
	if len(res.Diags.Errors()) == 0 {
		t.Fatal("structured diagnostics must be preserved")
	}
	first, _ := res.Diags.First()
	if first.Category != diag.CatUndeclaredIdent || first.Symbol != "clk" {
		t.Fatalf("ground truth = %+v", first)
	}
}

func TestQuartusWarningsOnSuccess(t *testing.T) {
	src := `module m(input [3:0] a, output [7:0] y);
	assign y = a;
endmodule`
	res := Quartus{}.Compile("main.v", src)
	if !res.Ok {
		t.Fatalf("width mismatch is a warning, not an error: %s", res.Log)
	}
	if !strings.Contains(res.Log, "Warning") {
		t.Fatalf("warning should appear in the log: %q", res.Log)
	}
}

func TestAllPersonasEmitNonEmptySuccessLog(t *testing.T) {
	// An empty success log would leave the agent recording an empty
	// Observation step; every persona must say something on success.
	for _, c := range All() {
		res := c.Compile("main.v", cleanExample)
		if !res.Ok {
			t.Fatalf("%s rejects clean code: %s", c.Name(), res.Log)
		}
		if strings.TrimSpace(res.Log) == "" {
			t.Errorf("%s success log is empty", c.Name())
		}
	}
}

func TestIVerilogSuccessLogEchoesFilename(t *testing.T) {
	res := IVerilog{}.Compile("adder.v", cleanExample)
	if !res.Ok {
		t.Fatalf("clean code rejected: %s", res.Log)
	}
	if !strings.Contains(res.Log, "adder.v") {
		t.Fatalf("iverilog success log should echo the filename, got %q", res.Log)
	}
}

func TestFrontendMergedDiagsAreSortedAndComplete(t *testing.T) {
	// Frontend merges parse and sema diagnostics into a fresh slice (no
	// shared backing array with the parse list) and position-sorts the
	// result; both streams must survive the merge in order.
	src := `module m(input a, output y);
	assign y = b;
	assign q = a;
endmodule
`
	_, design, all := Frontend(src)
	if design != nil {
		t.Fatal("source with sema errors must not elaborate")
	}
	if len(all) < 2 {
		t.Fatalf("expected at least two diagnostics, got %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Pos.Line < all[i-1].Pos.Line {
			t.Fatalf("diagnostics not sorted by position: %+v", all)
		}
	}
	found := false
	for _, d := range all {
		if d.Category == diag.CatUndeclaredIdent {
			found = true
		}
	}
	if !found {
		t.Fatal("sema diagnostics lost in the merge")
	}
}
