package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/resilience"
)

// panicEvery returns a FixFunc that panics on jobs whose index is a
// multiple of n and otherwise behaves like synthFix.
func panicEvery(n int) FixFunc {
	return func(ctx context.Context, j Job) *agent.Transcript {
		if j.Index%n == 0 {
			panic("boom on job")
		}
		return synthFix(ctx, j)
	}
}

// TestPanicIsolatedDirectPath: a panicking job yields a Result carrying
// a *resilience.PanicError; every other job in the batch runs normally
// and the pool survives to drain the whole queue.
func TestPanicIsolatedDirectPath(t *testing.T) {
	jobs := makeJobs(12, 3)
	results, err := Run(context.Background(), Config{Workers: 4}, jobs, panicEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i%4 == 0 {
			var pe *resilience.PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("job %d: err = %v, want PanicError", i, r.Err)
			}
			if pe.Site != "pipeline.job" || len(pe.Stack) == 0 {
				t.Fatalf("job %d: panic error missing site/stack: %+v", i, pe)
			}
			if r.Transcript != nil {
				t.Fatalf("job %d: transcript present on panicked job", i)
			}
			continue
		}
		if r.Err != nil || r.Transcript == nil {
			t.Fatalf("job %d: healthy job got err=%v tr=%v", i, r.Err, r.Transcript)
		}
	}
}

// TestPanicIsolatedTimeoutPath: the same isolation holds on the
// JobTimeout goroutine path — the panic arrives as the job's outcome,
// not a deadline error, and not a crash.
func TestPanicIsolatedTimeoutPath(t *testing.T) {
	jobs := makeJobs(6, 2)
	cfg := Config{Workers: 2, JobTimeout: 5 * time.Second}
	results, err := Run(context.Background(), cfg, jobs, panicEvery(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i%3 == 0 {
			var pe *resilience.PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("job %d: err = %v, want PanicError", i, r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
}

// TestPanicReachesOnResult: serving layers key their accounting off
// OnResult, so a panicked job must be delivered there like any other
// completion.
func TestPanicReachesOnResult(t *testing.T) {
	jobs := makeJobs(4, 1)
	var panicked int
	cfg := Config{Workers: 2, OnResult: func(r Result) {
		if pe, ok := resilience.AsPanic(r.Err); ok && pe != nil {
			panicked++
		}
	}}
	if _, err := Run(context.Background(), cfg, jobs, panicEvery(2)); err != nil {
		t.Fatal(err)
	}
	if panicked != 2 {
		t.Fatalf("OnResult saw %d panicked jobs, want 2", panicked)
	}
}
