package pipeline

import (
	"math"
	"time"

	"repro/internal/agent"
	"repro/internal/memo"
	"repro/internal/metrics"
)

// Summary aggregates a batch's results into the quantities the paper's
// evaluation needs: the fix rate (eq. 1) over job groups, the per-group
// success counts that feed the pass@k estimator (eq. 2), and the
// iteration histogram behind Figure 7. Because it is computed from the
// index-ordered result slice, a Summary is identical for any worker
// count.
type Summary struct {
	// Jobs is the batch size; Completed excludes canceled/timed-out jobs.
	Jobs      int
	Completed int
	// Succeeded counts transcripts with Success == true; Failed counts
	// completed-but-unfixed jobs; Errored counts canceled/timed-out ones.
	Succeeded int
	Failed    int
	Errored   int
	// FixRate is metrics.FixRate over groups (NaN when no group has a
	// completed job).
	FixRate float64
	// GroupTotal/GroupFixed are the pass@k estimator inputs, indexed by
	// Job.Group (dense 0..maxGroup).
	GroupTotal []int
	GroupFixed []int
	// IterationHist[i] counts successful fixes that needed i revisions
	// (index 0 unused; 1..agent.DefaultMaxIterations), Figure 7's data.
	IterationHist [agent.DefaultMaxIterations + 1]int
	// LintFindings sums the analyzer findings surfaced to the model
	// across all completed transcripts (0 with the analyzer off).
	LintFindings int
	// TotalWork sums per-job elapsed time: the serial cost the pool
	// amortized.
	TotalWork time.Duration
	// Cache holds the memoization-layer counters for the run when the
	// caller attaches them (bench does, via core.RTLFixer.CacheStats);
	// zero when caching is off. Under concurrency the hit/miss split is
	// approximate — racing workers may both miss one key — so it is
	// reported alongside, never inside, the deterministic table output.
	Cache memo.Stats
}

// Summarize folds an index-ordered result slice into a Summary.
func Summarize(results []Result) *Summary {
	s := &Summary{Jobs: len(results), FixRate: math.NaN()}
	maxGroup := -1
	for _, r := range results {
		if r.Job.Group > maxGroup {
			maxGroup = r.Job.Group
		}
	}
	s.GroupTotal = make([]int, maxGroup+1)
	s.GroupFixed = make([]int, maxGroup+1)

	for _, r := range results {
		s.TotalWork += r.Elapsed
		if r.Err != nil || r.Transcript == nil {
			s.Errored++
			continue
		}
		s.Completed++
		s.LintFindings += r.Transcript.LintFindings
		s.GroupTotal[r.Job.Group]++
		if r.Transcript.Success {
			s.Succeeded++
			s.GroupFixed[r.Job.Group]++
			if it := r.Transcript.Iterations; it >= 0 && it < len(s.IterationHist) {
				s.IterationHist[it]++
			}
		} else {
			s.Failed++
		}
	}

	// Groups with no completed job (all canceled) cannot contribute to
	// the fix rate; compact them away for the estimator.
	var fixed, total []int
	for g := range s.GroupTotal {
		if s.GroupTotal[g] > 0 {
			fixed = append(fixed, s.GroupFixed[g])
			total = append(total, s.GroupTotal[g])
		}
	}
	if rate, err := metrics.FixRate(fixed, total); err == nil {
		s.FixRate = rate
	}
	return s
}

// Merge combines shard summaries (as produced by Summarize over each
// shard's results) into one, re-deriving the fix rate from the merged
// group tallies. Groups are merged by index, so shards must use a shared
// group numbering.
func Merge(parts ...*Summary) *Summary {
	m := &Summary{FixRate: math.NaN()}
	maxGroups := 0
	for _, p := range parts {
		if len(p.GroupTotal) > maxGroups {
			maxGroups = len(p.GroupTotal)
		}
	}
	m.GroupTotal = make([]int, maxGroups)
	m.GroupFixed = make([]int, maxGroups)
	for _, p := range parts {
		m.Jobs += p.Jobs
		m.Completed += p.Completed
		m.Succeeded += p.Succeeded
		m.Failed += p.Failed
		m.Errored += p.Errored
		m.LintFindings += p.LintFindings
		m.TotalWork += p.TotalWork
		m.Cache = m.Cache.Add(p.Cache)
		for g := range p.GroupTotal {
			m.GroupTotal[g] += p.GroupTotal[g]
			m.GroupFixed[g] += p.GroupFixed[g]
		}
		for i := range p.IterationHist {
			m.IterationHist[i] += p.IterationHist[i]
		}
	}
	var fixed, total []int
	for g := range m.GroupTotal {
		if m.GroupTotal[g] > 0 {
			fixed = append(fixed, m.GroupFixed[g])
			total = append(total, m.GroupTotal[g])
		}
	}
	if rate, err := metrics.FixRate(fixed, total); err == nil {
		m.FixRate = rate
	}
	return m
}
