// Package pipeline is the parallel evaluation layer of the reproduction:
// it fans a batch of (problem, sampleSeed) jobs out over a fixed worker
// pool, runs each through a caller-supplied fix function (normally
// core.RTLFixer.Fix), and aggregates the results deterministically.
//
// Determinism is the central contract. Workers race over the job queue,
// but every result is written back to the slot of its originating job, so
// the returned slice is ordered by job index and is byte-for-byte
// identical regardless of the worker count. The only requirement on the
// fix function is that it is a pure function of its Job (all of
// core.RTLFixer's per-call state — the simulated model's RNG — is derived
// from Job.SampleSeed), which is also what makes it safe to call from
// many goroutines at once.
//
// The shape mirrors the sharded worker-pool / central-aggregator pipelines
// of high-throughput DAQ systems (see PAPERS.md): shard the suite, run
// shards on independent pools, merge summaries at the end.
package pipeline

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Job is one unit of work: a single erroneous source to run through the
// debugging agent.
type Job struct {
	// Index is the job's position in the batch. Run overwrites it with
	// the slice position so results always align with the input order.
	Index int
	// Group buckets jobs for per-problem aggregation (e.g. all repeats of
	// one curated entry share a Group). Summaries compute fix rates and
	// pass@k inputs per group.
	Group int
	// Filename is passed through to the fix function.
	Filename string
	// Code is the erroneous source.
	Code string
	// SampleSeed drives the simulated model, exactly as in
	// core.RTLFixer.Fix.
	SampleSeed int64
}

// FixFunc runs one job and returns its transcript. It must be a pure
// function of the job (no shared mutable state, no ambient randomness):
// that is both the thread-safety and the determinism requirement.
type FixFunc func(ctx context.Context, j Job) *agent.Transcript

// Fixer is the slice of core.RTLFixer the pipeline needs (declared here
// rather than importing core, which sits above this package).
type Fixer interface {
	Fix(filename, code string, sampleSeed int64) *agent.Transcript
}

// TracedFixer is the optional extension a Fixer can implement to accept
// a parent trace span (core.RTLFixer does, via FixTraced). FixWith uses
// it when the job's context carries a span — i.e. when Config.Tracer is
// set — so the agent's stage children land under the job trace.
type TracedFixer interface {
	FixTraced(filename, code string, sampleSeed int64, sp *trace.Span) *agent.Transcript
}

// FixWith adapts a Fixer into a FixFunc — the standard way to submit
// agent runs to the pool. When the fixer is also a TracedFixer and the
// context carries a span, the run is recorded under an "agent" child;
// otherwise the plain Fix path runs, identically to before tracing
// existed.
func FixWith(f Fixer) FixFunc {
	tf, traced := f.(TracedFixer)
	return func(ctx context.Context, j Job) *agent.Transcript {
		if traced {
			if sp := trace.FromContext(ctx); sp != nil {
				ag := sp.Child("agent")
				tr := tf.FixTraced(j.Filename, j.Code, j.SampleSeed, ag)
				if tr != nil {
					ag.SetBool("success", tr.Success)
					ag.SetInt("iterations", int64(tr.Iterations))
				}
				ag.End()
				return tr
			}
		}
		return f.Fix(j.Filename, j.Code, j.SampleSeed)
	}
}

// Result pairs a job with its outcome.
type Result struct {
	Job        Job
	Transcript *agent.Transcript
	// Err is non-nil when the job was canceled or timed out before (or
	// while) running, or when it panicked mid-run (a
	// *resilience.PanicError — the worker recovered and kept serving);
	// Transcript is nil in that case.
	Err error
	// Elapsed is the job's wall-clock run time (zero if never started).
	Elapsed time.Duration
}

// Config tunes a pipeline run.
type Config struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU().
	Workers int
	// JobTimeout bounds each job's wall-clock time; 0 means no limit.
	// A timed-out job yields Err == context.DeadlineExceeded. The fix
	// function itself cannot be preempted, so its goroutine is abandoned
	// to finish in the background (agent runs are iteration-bounded, so
	// this is bounded work).
	JobTimeout time.Duration
	// OnProgress, when non-nil, is called after each job completes with
	// the number of completed jobs and the batch size. Calls are
	// serialized but arrive in completion order, not job order.
	OnProgress func(done, total int)
	// OnResult, when non-nil, is called with each job's Result as soon
	// as that job finishes, without waiting for the rest of the batch —
	// the hook a server needs to answer each caller at its own job's
	// completion. Calls are serialized (under the same lock as
	// OnProgress) and arrive in completion order; canceled jobs are
	// reported too, with Err set. The result slice Run returns is
	// unaffected.
	OnResult func(Result)
	// Tracer, when non-nil, collects one trace per job: runOne opens a
	// root "job" span, carries it on the worker's context
	// (trace.NewContext), and ends it when the job finishes or times
	// out. Fix functions that understand spans (FixWith's TracedFixer
	// path) hang their stage children off it. Nil costs nothing and
	// changes nothing — results are byte-identical with tracing on or
	// off.
	Tracer *trace.Collector
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// Run executes the batch and returns one result per job, ordered by job
// index. When ctx is canceled mid-batch, jobs not yet started are marked
// with ctx.Err() and Run returns that error alongside the partial results;
// jobs already running are left to finish so their slots are valid.
func Run(ctx context.Context, cfg Config, jobs []Job, fn FixFunc) ([]Result, error) {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	queue := make(chan int)
	var wg sync.WaitGroup

	// deliver serializes the completion callbacks across workers. They
	// run under the mutex so invocations are truly serialized and done
	// counts arrive in order, as Config documents; callbacks are expected
	// to be cheap (progress display, handing a result to a waiter), so
	// holding the lock across them does not throttle the pool
	// meaningfully.
	var progressMu sync.Mutex
	done := 0
	deliver := func(r Result) {
		if cfg.OnProgress == nil && cfg.OnResult == nil {
			return
		}
		progressMu.Lock()
		if cfg.OnResult != nil {
			cfg.OnResult(r)
		}
		if cfg.OnProgress != nil {
			done++
			cfg.OnProgress(done, len(jobs))
		}
		progressMu.Unlock()
	}

	workers := cfg.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				results[i] = runOne(ctx, cfg, jobs[i], i, fn)
				deliver(results[i])
			}
		}()
	}

	// Feed the queue until the batch is drained or the context dies.
	var runErr error
feed:
	for i := range jobs {
		select {
		case queue <- i:
		case <-ctx.Done():
			runErr = ctx.Err()
			// Mark everything not yet handed to a worker as canceled.
			for j := i; j < len(jobs); j++ {
				jb := jobs[j]
				jb.Index = j
				results[j] = Result{Job: jb, Err: ctx.Err()}
				deliver(results[j])
			}
			break feed
		}
	}
	close(queue)
	wg.Wait()
	return results, runErr
}

// runOne executes a single job, applying the per-job timeout.
func runOne(ctx context.Context, cfg Config, j Job, index int, fn FixFunc) Result {
	j.Index = index
	if err := ctx.Err(); err != nil {
		return Result{Job: j, Err: err}
	}
	if cfg.Tracer != nil {
		root := cfg.Tracer.Start("job")
		root.SetStr("filename", j.Filename)
		root.SetInt("index", int64(index))
		root.SetInt("group", int64(j.Group))
		root.SetInt("seed", j.SampleSeed)
		ctx = trace.NewContext(ctx, root)
		// On timeout the abandoned goroutine may still append children
		// after the root ends; the trace layer tolerates late arrivals.
		defer root.End()
	}
	start := time.Now()
	if cfg.JobTimeout <= 0 {
		tr, perr := invoke(ctx, j, fn)
		return Result{Job: j, Transcript: tr, Err: perr, Elapsed: time.Since(start)}
	}

	jctx, cancel := context.WithTimeout(ctx, cfg.JobTimeout)
	defer cancel()
	type outcome struct {
		tr  *agent.Transcript
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		tr, perr := invoke(jctx, j, fn)
		ch <- outcome{tr, perr}
	}()
	select {
	case o := <-ch:
		return Result{Job: j, Transcript: o.tr, Err: o.err, Elapsed: time.Since(start)}
	case <-jctx.Done():
		return Result{Job: j, Err: jctx.Err(), Elapsed: time.Since(start)}
	}
}

// invoke runs the fix function with panic isolation: a panicking job
// becomes a failed Result carrying a *resilience.PanicError instead of
// unwinding the worker and crashing the pool (and, behind it, the
// daemon). The fix function's own defers — run-slot release, in-flight
// gauges — run normally during the unwind.
func invoke(ctx context.Context, j Job, fn FixFunc) (tr *agent.Transcript, err error) {
	defer func() {
		if r := recover(); r != nil {
			tr, err = nil, resilience.Recovered("pipeline.job", r)
		}
	}()
	return fn(ctx, j), nil
}

// Shard splits a batch into n contiguous, near-equal chunks (the last
// chunks are one shorter when the division is uneven). Shards preserve job
// order, so running shards on separate pools and concatenating their
// result slices reproduces a single Run over the whole batch.
func Shard(jobs []Job, n int) [][]Job {
	if n <= 0 {
		n = 1
	}
	if n > len(jobs) {
		n = len(jobs)
	}
	if n == 0 {
		return nil
	}
	shards := make([][]Job, 0, n)
	base, extra := len(jobs)/n, len(jobs)%n
	at := 0
	for s := 0; s < n; s++ {
		size := base
		if s < extra {
			size++
		}
		shards = append(shards, jobs[at:at+size])
		at += size
	}
	return shards
}
