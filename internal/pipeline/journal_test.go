package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/agent"
)

// mapJournal is an in-memory Journal for tests.
type mapJournal struct {
	mu sync.Mutex
	m  map[uint64]Outcome
}

func newMapJournal() *mapJournal { return &mapJournal{m: map[uint64]Outcome{}} }

func (j *mapJournal) Lookup(label string, jb Job) (Outcome, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	o, ok := j.m[JobKey(label, jb)]
	return o, ok
}

func (j *mapJournal) Record(label string, jb Job, o Outcome) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.m[JobKey(label, jb)] = o
}

// journalFixFunc is a deterministic fake agent: success and iteration
// count derive from the seed, final code from the input.
func journalFixFunc(runs *atomic.Int64) FixFunc {
	return func(_ context.Context, j Job) *agent.Transcript {
		runs.Add(1)
		return &agent.Transcript{
			Success:    j.SampleSeed%2 == 0,
			Iterations: int(j.SampleSeed % 5),
			FinalCode:  "fixed:" + j.Code,
			FixerRules: []string{fmt.Sprintf("rule-%d", j.SampleSeed)},
		}
	}
}

func journalJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Group: i / 2, Filename: "main.v",
			Code: fmt.Sprintf("module m%d; endmodule", i), SampleSeed: int64(i + 1)}
	}
	return jobs
}

func TestRunJournaledRecordsAndResumes(t *testing.T) {
	jobs := journalJobs(6)
	j := newMapJournal()
	var runs atomic.Int64

	first, err := RunJournaled(context.Background(), Config{Workers: 3}, "exp/a", jobs, journalFixFunc(&runs), j)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if runs.Load() != 6 {
		t.Fatalf("first run executed %d jobs, want 6", runs.Load())
	}
	if len(j.m) != 6 {
		t.Fatalf("journal holds %d outcomes, want 6", len(j.m))
	}

	// Resume: nothing re-runs, summaries are identical.
	runs.Store(0)
	second, err := RunJournaled(context.Background(), Config{Workers: 3}, "exp/a", jobs, journalFixFunc(&runs), j)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if runs.Load() != 0 {
		t.Fatalf("resume executed %d jobs, want 0", runs.Load())
	}
	s1, s2 := Summarize(first), Summarize(second)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("summaries differ across resume:\n%+v\n%+v", s1, s2)
	}
	for i := range first {
		if first[i].Transcript.FinalCode != second[i].Transcript.FinalCode ||
			first[i].Transcript.Success != second[i].Transcript.Success ||
			first[i].Transcript.Iterations != second[i].Transcript.Iterations {
			t.Fatalf("restored transcript %d differs", i)
		}
		if second[i].Job.Index != i {
			t.Fatalf("restored result %d has index %d", i, second[i].Job.Index)
		}
	}

	// A different label shares nothing.
	runs.Store(0)
	if _, err := RunJournaled(context.Background(), Config{Workers: 3}, "exp/b", jobs, journalFixFunc(&runs), j); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 6 {
		t.Fatalf("foreign label reused entries: %d runs", runs.Load())
	}
}

func TestRunJournaledPartialResume(t *testing.T) {
	jobs := journalJobs(8)
	j := newMapJournal()
	var runs atomic.Int64
	fn := journalFixFunc(&runs)

	// Simulate a killed run: journal only the first half's outcomes.
	full, err := Run(context.Background(), Config{Workers: 2}, jobs, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r := full[i]
		j.Record("exp", r.Job, OutcomeOf(r))
	}

	runs.Store(0)
	resumed, err := RunJournaled(context.Background(), Config{Workers: 2}, "exp", jobs, fn, j)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 4 {
		t.Fatalf("resume ran %d jobs, want the 4 unjournaled", runs.Load())
	}
	s1, s2 := Summarize(full), Summarize(resumed)
	if !reflect.DeepEqual(s1.GroupTotal, s2.GroupTotal) || !reflect.DeepEqual(s1.GroupFixed, s2.GroupFixed) ||
		s1.Succeeded != s2.Succeeded || s1.IterationHist != s2.IterationHist {
		t.Fatalf("resumed summary differs:\n%+v\n%+v", s1, s2)
	}
	if len(j.m) != 8 {
		t.Fatalf("resume journaled %d outcomes, want 8", len(j.m))
	}
}

func TestRunJournaledHooksCoverRestoredJobs(t *testing.T) {
	jobs := journalJobs(5)
	j := newMapJournal()
	var runs atomic.Int64
	fn := journalFixFunc(&runs)
	if _, err := RunJournaled(context.Background(), Config{Workers: 2}, "exp", jobs, fn, j); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var seen []int
	lastDone, lastTotal := 0, 0
	cfg := Config{
		Workers: 2,
		OnResult: func(r Result) {
			mu.Lock()
			seen = append(seen, r.Job.Index)
			mu.Unlock()
		},
		OnProgress: func(done, total int) {
			mu.Lock()
			lastDone, lastTotal = done, total
			mu.Unlock()
		},
	}
	if _, err := RunJournaled(context.Background(), cfg, "exp", jobs, fn, j); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("OnResult saw %d restored jobs, want 5", len(seen))
	}
	if lastDone != 5 || lastTotal != 5 {
		t.Fatalf("OnProgress ended at %d/%d, want 5/5", lastDone, lastTotal)
	}
}

func TestRunJournaledDoesNotRecordCanceled(t *testing.T) {
	jobs := journalJobs(4)
	j := newMapJournal()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var runs atomic.Int64
	results, err := RunJournaled(ctx, Config{Workers: 2}, "exp", jobs, journalFixFunc(&runs), j)
	if err == nil {
		t.Fatal("canceled run must report its context error")
	}
	if len(j.m) != 0 {
		t.Fatalf("canceled jobs were journaled: %d", len(j.m))
	}
	for _, r := range results {
		if r.Err == nil && r.Transcript == nil {
			t.Fatal("canceled result must carry its error")
		}
	}
}

func TestJobKeyDiscriminates(t *testing.T) {
	base := Job{Filename: "main.v", Code: "module m; endmodule", SampleSeed: 7}
	k := JobKey("label", base)
	alt := base
	alt.SampleSeed = 8
	if JobKey("label", alt) == k {
		t.Fatal("seed must change the key")
	}
	alt = base
	alt.Code = "module n; endmodule"
	if JobKey("label", alt) == k {
		t.Fatal("code must change the key")
	}
	if JobKey("other", base) == k {
		t.Fatal("label must change the key")
	}
	// Group and index are deliberately excluded.
	alt = base
	alt.Group, alt.Index = 9, 4
	if JobKey("label", alt) != k {
		t.Fatal("group/index must not change the key")
	}
}
