package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/trace"
)

// synthFix is a deterministic pure function of the job, mimicking the
// contract core.RTLFixer.Fix satisfies.
func synthFix(_ context.Context, j Job) *agent.Transcript {
	seed := j.SampleSeed
	return &agent.Transcript{
		Success:    seed%3 != 0,
		Iterations: int(seed%int64(agent.DefaultMaxIterations)) + 1,
		FinalCode:  fmt.Sprintf("// job %d seed %d\n%s", j.Index, seed, j.Code),
	}
}

func makeJobs(n, groups int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Group:      i % groups,
			Filename:   "main.v",
			Code:       fmt.Sprintf("module m%d; endmodule\n", i),
			SampleSeed: int64(i)*7919 + 3,
		}
	}
	return jobs
}

// TestDeterministicAcrossWorkerCounts is the pipeline's core guarantee:
// the ordered result slice and its summary are identical for 1 worker and
// for any larger pool.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := makeJobs(60, 12)
	ref, err := Run(context.Background(), Config{Workers: 1}, jobs, synthFix)
	if err != nil {
		t.Fatal(err)
	}
	refSum := Summarize(ref)
	for _, workers := range []int{2, 4, 8, 64} {
		got, err := Run(context.Background(), Config{Workers: workers}, jobs, synthFix)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			// Elapsed legitimately varies; everything else must not.
			got[i].Elapsed = ref[i].Elapsed
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
		gotSum := Summarize(got)
		gotSum.TotalWork = refSum.TotalWork
		if !reflect.DeepEqual(refSum, gotSum) {
			t.Fatalf("summaries differ between 1 and %d workers", workers)
		}
	}
}

// TestDeterministicWithRealFixer runs the real agent through the pool and
// checks final code and success bits agree between worker counts.
func TestDeterministicWithRealFixer(t *testing.T) {
	fixer, err := core.New(core.Options{
		CompilerName: "quartus", RAG: true, Mode: core.ModeReAct, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const buggy = `module top_module (
	input [3:0] a,
	output reg [3:0] out
);
	always @(posedge clk) begin
		out <= a
	end
endmodule
`
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Group: i / 2, Filename: "main.v", Code: buggy, SampleSeed: int64(i) * 31}
	}
	fn := func(_ context.Context, j Job) *agent.Transcript {
		return fixer.Fix(j.Filename, j.Code, j.SampleSeed)
	}
	serial, err := Run(context.Background(), Config{Workers: 1}, jobs, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), Config{Workers: 4}, jobs, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Transcript.FinalCode != parallel[i].Transcript.FinalCode ||
			serial[i].Transcript.Success != parallel[i].Transcript.Success ||
			serial[i].Transcript.Iterations != parallel[i].Transcript.Iterations {
			t.Fatalf("job %d diverged between worker counts", i)
		}
	}
}

// TestCancellationMidBatch cancels the context while the batch is
// draining: Run must return ctx.Err(), mark unstarted jobs with it, and
// still produce a full-length, index-aligned result slice.
func TestCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	block := make(chan struct{})
	fn := func(_ context.Context, j Job) *agent.Transcript {
		if started.Add(1) == 2 {
			cancel()
		}
		<-block
		return synthFix(context.Background(), j)
	}
	jobs := makeJobs(40, 8)
	done := make(chan struct{})
	var results []Result
	var runErr error
	go func() {
		results, runErr = Run(ctx, Config{Workers: 2}, jobs, fn)
		close(done)
	}()
	// Unblock the in-flight jobs once cancellation has been observed.
	go func() {
		for started.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		<-ctx.Done()
		close(block)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", runErr)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	completed, canceled := 0, 0
	for i, r := range results {
		if r.Job.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Job.Index)
		}
		switch {
		case r.Err == nil && r.Transcript != nil:
			completed++
		case errors.Is(r.Err, context.Canceled):
			canceled++
		default:
			t.Fatalf("result %d in impossible state: err=%v transcript=%v", i, r.Err, r.Transcript)
		}
	}
	if canceled == 0 {
		t.Fatal("no job observed the cancellation")
	}
	sum := Summarize(results)
	if sum.Errored != canceled || sum.Completed != completed {
		t.Fatalf("summary miscounts: %+v vs completed=%d canceled=%d", sum, completed, canceled)
	}
}

// TestJobTimeout bounds a stuck job without stalling the batch.
func TestJobTimeout(t *testing.T) {
	fn := func(ctx context.Context, j Job) *agent.Transcript {
		if j.Index == 1 {
			<-ctx.Done() // simulate a job that outlives its budget
		}
		return synthFix(ctx, j)
	}
	jobs := makeJobs(4, 4)
	results, err := Run(context.Background(),
		Config{Workers: 2, JobTimeout: 50 * time.Millisecond}, jobs, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == 1 {
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Fatalf("job 1 err = %v, want deadline exceeded", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Transcript == nil {
			t.Fatalf("job %d should have completed: %v", i, r.Err)
		}
	}
}

// TestProgressCallback checks every completion is reported exactly once,
// in order (calls are serialized, per Config's contract), and the final
// call sees the full batch.
func TestProgressCallback(t *testing.T) {
	calls := 0 // plain int: the serialization contract makes this safe
	cfg := Config{Workers: 4, OnProgress: func(done, total int) {
		calls++
		if total != 30 {
			t.Errorf("total = %d, want 30", total)
		}
		if done != calls {
			t.Errorf("done = %d on call %d; counts must arrive in order", done, calls)
		}
	}}
	if _, err := Run(context.Background(), cfg, makeJobs(30, 5), synthFix); err != nil {
		t.Fatal(err)
	}
	if calls != 30 {
		t.Fatalf("progress calls = %d, want 30", calls)
	}
}

// TestShardAndMerge verifies sharded execution plus Merge reproduces the
// single-pool summary.
func TestShardAndMerge(t *testing.T) {
	jobs := makeJobs(47, 9)
	whole, err := Run(context.Background(), Config{Workers: 3}, jobs, synthFix)
	if err != nil {
		t.Fatal(err)
	}
	want := Summarize(whole)

	shards := Shard(jobs, 5)
	if len(shards) != 5 {
		t.Fatalf("got %d shards, want 5", len(shards))
	}
	n := 0
	var parts []*Summary
	for _, sh := range shards {
		n += len(sh)
		res, err := Run(context.Background(), Config{Workers: 2}, sh, synthFix)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, Summarize(res))
	}
	if n != len(jobs) {
		t.Fatalf("shards cover %d jobs, want %d", n, len(jobs))
	}
	got := Merge(parts...)
	got.TotalWork = want.TotalWork
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("merged summary differs:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestShardEdgeCases pins the chunking behaviour.
func TestShardEdgeCases(t *testing.T) {
	if got := Shard(nil, 4); len(got) != 0 {
		t.Fatalf("Shard(nil) = %v", got)
	}
	jobs := makeJobs(3, 1)
	if got := Shard(jobs, 10); len(got) != 3 {
		t.Fatalf("Shard over-splits: %d shards for 3 jobs", len(got))
	}
	if got := Shard(jobs, 0); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("Shard(_, 0) = %v", got)
	}
}

// TestEmptyBatch must not deadlock or panic.
func TestEmptyBatch(t *testing.T) {
	results, err := Run(context.Background(), Config{}, nil, synthFix)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v %v", results, err)
	}
	if s := Summarize(results); !math.IsNaN(s.FixRate) || s.Jobs != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

// TestCancellationProgressReachesTotal: even when the batch is canceled
// mid-drain, every job — completed or canceled — must be reported through
// OnProgress exactly once, so a CLI progress display always terminates at
// total, and every canceled slot must carry ctx.Err().
func TestCancellationProgressReachesTotal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	block := make(chan struct{})
	fn := func(_ context.Context, j Job) *agent.Transcript {
		if started.Add(1) == 2 {
			cancel()
		}
		<-block
		return synthFix(context.Background(), j)
	}
	jobs := makeJobs(25, 5)
	var calls atomic.Int32
	var maxDone atomic.Int32
	cfg := Config{Workers: 2, OnProgress: func(done, total int) {
		calls.Add(1)
		if total != 25 {
			t.Errorf("total = %d, want 25", total)
		}
		if int32(done) > maxDone.Load() {
			maxDone.Store(int32(done))
		}
	}}
	go func() {
		for started.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		<-ctx.Done()
		close(block)
	}()
	results, runErr := Run(ctx, cfg, jobs, fn)
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", runErr)
	}
	if calls.Load() != 25 || maxDone.Load() != 25 {
		t.Fatalf("progress calls = %d, max done = %d, want 25/25", calls.Load(), maxDone.Load())
	}
	for i, r := range results {
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("slot %d carries %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestShardEmptyAndOversplit pins the remaining Shard edge cases: an
// empty (non-nil) batch, a shard count exceeding the batch, and exact
// coverage with order preserved.
func TestShardEmptyAndOversplit(t *testing.T) {
	if got := Shard([]Job{}, 3); len(got) != 0 {
		t.Fatalf("Shard(empty) = %v, want no shards", got)
	}
	jobs := makeJobs(4, 2)
	shards := Shard(jobs, 9)
	if len(shards) != 4 {
		t.Fatalf("n > len(jobs) must clamp to len(jobs): got %d shards", len(shards))
	}
	seen := 0
	for si, sh := range shards {
		if len(sh) != 1 {
			t.Fatalf("oversplit shard %d has %d jobs, want 1", si, len(sh))
		}
		if sh[0].SampleSeed != jobs[seen].SampleSeed {
			t.Fatalf("shard %d out of order", si)
		}
		seen++
	}
	if seen != len(jobs) {
		t.Fatalf("shards cover %d jobs, want %d", seen, len(jobs))
	}
}

// TestSummaryCarriesCacheStats: Summarize leaves Cache zero (it cannot
// know the fixer's counters); callers attach them, and Merge sums.
func TestSummaryCarriesCacheStats(t *testing.T) {
	jobs := makeJobs(6, 2)
	results, err := Run(context.Background(), Config{Workers: 2}, jobs, synthFix)
	if err != nil {
		t.Fatal(err)
	}
	a := Summarize(results)
	if a.Cache != (memo.Stats{}) {
		t.Fatalf("Summarize must not invent cache stats: %+v", a.Cache)
	}
	a.Cache = memo.Stats{Hits: 10, Misses: 2, Lookups: 5}
	b := Summarize(results)
	b.Cache = memo.Stats{Hits: 1, Misses: 1, Evictions: 3}
	m := Merge(a, b)
	want := memo.Stats{Hits: 11, Misses: 3, Evictions: 3, Lookups: 5}
	if m.Cache != want {
		t.Fatalf("Merge cache stats = %+v, want %+v", m.Cache, want)
	}
}

// TestOnResultDeliversEveryJob checks the per-completion hook: every job
// (including canceled ones) is reported exactly once, serialized, with the
// same Result that lands in the returned slice.
func TestOnResultDeliversEveryJob(t *testing.T) {
	jobs := makeJobs(40, 8)
	var mu sync.Mutex
	seen := make(map[int]Result)
	inHook := atomic.Int32{}
	cfg := Config{Workers: 4, OnResult: func(r Result) {
		if inHook.Add(1) != 1 {
			t.Error("OnResult reentered: calls are not serialized")
		}
		mu.Lock()
		if _, dup := seen[r.Job.Index]; dup {
			t.Errorf("job %d reported twice", r.Job.Index)
		}
		seen[r.Job.Index] = r
		mu.Unlock()
		inHook.Add(-1)
	}}
	results, err := Run(context.Background(), cfg, jobs, synthFix)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("OnResult saw %d jobs, want %d", len(seen), len(jobs))
	}
	for i, r := range results {
		got := seen[i]
		got.Elapsed = r.Elapsed
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("job %d: OnResult saw %+v, Run returned %+v", i, got, r)
		}
	}
}

// TestOnResultReportsCanceledJobs verifies canceled jobs reach the hook
// with Err set, so a server can answer their waiters.
func TestOnResultReportsCanceledJobs(t *testing.T) {
	jobs := makeJobs(30, 5)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	blockingFix := func(_ context.Context, j Job) *agent.Transcript {
		once.Do(func() { close(started) })
		<-release
		return synthFix(context.Background(), j)
	}
	var canceled, completed atomic.Int32
	cfg := Config{Workers: 2, OnResult: func(r Result) {
		if r.Err != nil {
			canceled.Add(1)
		} else {
			completed.Add(1)
		}
	}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(ctx, cfg, jobs, blockingFix)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run err = %v, want context.Canceled", err)
		}
	}()
	<-started
	cancel()
	close(release)
	<-done
	if got := int(canceled.Load() + completed.Load()); got != len(jobs) {
		t.Fatalf("OnResult saw %d jobs, want %d", got, len(jobs))
	}
	if canceled.Load() == 0 {
		t.Fatal("no canceled jobs reached OnResult")
	}
}

// TestTracerCollectsJobTraces runs the real fixer with a collector
// attached and checks (a) every job produced a trace rooted at "job"
// with an "agent" child carrying compile spans, and (b) transcripts are
// byte-identical to an untraced run — tracing must be a pure observer.
func TestTracerCollectsJobTraces(t *testing.T) {
	fixer, err := core.New(core.Options{
		CompilerName: "quartus", RAG: true, Cache: true, Mode: core.ModeReAct, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const buggy = `module top_module (
	input [3:0] a,
	output reg [3:0] out
);
	always @(posedge clk) begin
		out <= a
	end
endmodule
`
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Group: i, Filename: "main.v", Code: buggy, SampleSeed: int64(i) * 31}
	}
	plain, err := Run(context.Background(), Config{Workers: 2}, jobs, FixWith(fixer))
	if err != nil {
		t.Fatal(err)
	}
	c := trace.NewCollector(16, 0, time.Hour)
	traced, err := Run(context.Background(), Config{Workers: 2, Tracer: c}, jobs, FixWith(fixer))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Transcript.FinalCode != traced[i].Transcript.FinalCode ||
			plain[i].Transcript.Success != traced[i].Transcript.Success {
			t.Fatalf("job %d output changed under tracing", i)
		}
	}
	sums := c.Summaries(0)
	if len(sums) != len(jobs) {
		t.Fatalf("collected %d traces, want %d", len(sums), len(jobs))
	}
	for _, s := range sums {
		tr, ok := c.Get(s.ID)
		if !ok {
			t.Fatalf("trace %s not retrievable", s.ID)
		}
		j := tr.JSON()
		if j.Root.Name != "job" {
			t.Fatalf("root span = %q, want job", j.Root.Name)
		}
		stages := map[string]int{}
		tr.Walk(func(name string, _ time.Duration, ended bool) {
			if ended {
				stages[name]++
			}
		})
		if stages["agent"] != 1 || stages["compile"] == 0 {
			t.Fatalf("trace %s missing agent/compile spans: %v", s.ID, stages)
		}
	}
}
