// Journaled runs: the resumable form of Run. Every completed job's
// outcome is recorded through a caller-supplied Journal (reusing the
// OnResult per-job completion hook), and a later run over the same
// labeled batch restores those outcomes instead of re-running the jobs —
// a killed benchmark restarts and skips straight to the unfinished work.
//
// The journal stores the replayable essence of a transcript (success,
// iteration count, final code, fixer rules, elapsed), which is exactly
// the set of fields the summary layer and the bench tables consume; a
// restored result therefore reproduces the original run's tables
// byte-for-byte. The full step-by-step transcript is not kept — a
// restored Transcript renders without its Thought/Action/Observation
// trace, which no table reads.
//
// Correctness rests on the same contract Run already imposes: a FixFunc
// is a pure function of its Job. A journal entry is content-addressed by
// (label, filename, code, seed), so it can only ever replace a run that
// would have produced the same transcript. The label carries everything
// that selects behaviour beyond the job fields — the fixer configuration,
// experiment name, base seed — so two differently configured runs never
// share entries.
package pipeline

import (
	"context"
	"hash/fnv"
	"time"

	"repro/internal/agent"
)

// Outcome is one journaled job completion.
type Outcome struct {
	Success    bool
	Iterations int
	FinalCode  string
	FixerRules []string
	// LintFindings preserves the transcript's analyzer-findings count so
	// the analyzer A/B table survives a resume.
	LintFindings int
	// ElapsedNS preserves the original run's per-job wall-clock time, so
	// aggregate work accounting survives a resume.
	ElapsedNS int64
}

// Journal persists job outcomes. The full (label, job) identity is
// passed through — not just a hash — so implementations can store enough
// of it to detect key collisions and degrade them to a re-run instead of
// restoring a foreign outcome. Implementations must be safe for
// concurrent use (Record calls arrive from the completion hook, which is
// serialized per run, but concurrent runs may interleave).
type Journal interface {
	// Lookup returns the outcome recorded for the job, if any.
	Lookup(label string, j Job) (Outcome, bool)
	// Record stores the job's outcome.
	Record(label string, j Job, o Outcome)
}

// JobKey content-addresses one job within a labeled batch: FNV-64a over
// the label and the job fields the fix function sees (filename, code,
// seed). Group and index are excluded — the outcome does not depend on
// them — so identical attempts dedupe across groups.
func JobKey(label string, j Job) uint64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write([]byte(j.Filename))
	h.Write([]byte{0})
	h.Write([]byte(j.Code))
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(j.SampleSeed >> (8 * i))
	}
	h.Write([]byte{0})
	h.Write(seed[:])
	return h.Sum64()
}

// transcript rebuilds the replayable view of a journaled completion.
func (o Outcome) transcript() *agent.Transcript {
	return &agent.Transcript{
		Success:      o.Success,
		Iterations:   o.Iterations,
		FinalCode:    o.FinalCode,
		FixerRules:   o.FixerRules,
		LintFindings: o.LintFindings,
	}
}

// OutcomeOf extracts the journaled essence of a completed result.
func OutcomeOf(r Result) Outcome {
	return Outcome{
		Success:      r.Transcript.Success,
		Iterations:   r.Transcript.Iterations,
		FinalCode:    r.Transcript.FinalCode,
		FixerRules:   r.Transcript.FixerRules,
		LintFindings: r.Transcript.LintFindings,
		ElapsedNS:    int64(r.Elapsed),
	}
}

// RunJournaled is Run with persistence: jobs whose outcome is already in
// the journal are restored without running (delivered to the OnResult /
// OnProgress hooks first, in job order), the rest run through Run with
// every fresh completion recorded. The returned slice is ordered by job
// index and byte-equivalent to an uninterrupted Run for every field the
// summary and table layers consume. A nil journal degrades to Run.
func RunJournaled(ctx context.Context, cfg Config, label string, jobs []Job, fn FixFunc, j Journal) ([]Result, error) {
	if j == nil {
		return Run(ctx, cfg, jobs, fn)
	}

	results := make([]Result, len(jobs))
	var pending []Job
	var pendingIdx []int
	for i, jb := range jobs {
		jb.Index = i
		if o, ok := j.Lookup(label, jb); ok {
			results[i] = Result{Job: jb, Transcript: o.transcript(), Elapsed: time.Duration(o.ElapsedNS)}
			continue
		}
		pending = append(pending, jb)
		pendingIdx = append(pendingIdx, i)
	}

	// Deliver restored completions through the caller's hooks so
	// progress accounting matches an uninterrupted run's totals.
	done := 0
	for i := range jobs {
		if results[i].Transcript == nil {
			continue
		}
		if cfg.OnResult != nil {
			cfg.OnResult(results[i])
		}
		if cfg.OnProgress != nil {
			done++
			cfg.OnProgress(done, len(jobs))
		}
	}
	if len(pending) == 0 {
		return results, ctx.Err()
	}

	inner := cfg
	inner.OnProgress = nil
	inner.OnResult = func(r Result) {
		orig := pendingIdx[r.Job.Index]
		r.Job.Index = orig
		if r.Err == nil && r.Transcript != nil {
			j.Record(label, r.Job, OutcomeOf(r))
		}
		if cfg.OnResult != nil {
			cfg.OnResult(r)
		}
		if cfg.OnProgress != nil {
			done++
			cfg.OnProgress(done, len(jobs))
		}
	}

	sub, err := Run(ctx, inner, pending, fn)
	for si, r := range sub {
		r.Job.Index = pendingIdx[si]
		results[pendingIdx[si]] = r
	}
	return results, err
}
