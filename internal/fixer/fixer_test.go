package fixer

import (
	"strings"
	"testing"
)

const clean = `module m(input a, output y);
	assign y = ~a;
endmodule
`

func TestFixLeavesCleanCodeAlone(t *testing.T) {
	res := Fix(clean)
	if len(res.Applied) != 0 {
		t.Fatalf("rules fired on clean code: %v", res.Applied)
	}
	if res.Code != clean {
		t.Fatal("clean code modified")
	}
}

func TestExtractMarkdownBlock(t *testing.T) {
	src := "Sure! Here's the fix:\n```verilog\n" + clean + "```\nLet me know if it works."
	res := Fix(src)
	if !strings.Contains(res.Code, "module m") {
		t.Fatalf("module lost: %q", res.Code)
	}
	if strings.Contains(res.Code, "```") || strings.Contains(res.Code, "Sure!") {
		t.Fatalf("markdown残: %q", res.Code)
	}
	if !applied(res, "extract-markdown-block") {
		t.Errorf("rule not recorded: %v", res.Applied)
	}
}

func TestExtractFirstBlockOnly(t *testing.T) {
	src := "```\nmodule a; endmodule\n```\nand also\n```\nmodule b; endmodule\n```"
	res := Fix(src)
	if strings.Contains(res.Code, "module b") {
		t.Fatalf("second block leaked: %q", res.Code)
	}
}

func TestUnbalancedFenceDropsFenceLines(t *testing.T) {
	src := "```verilog\n" + clean
	res := Fix(src)
	if strings.Contains(res.Code, "```") {
		t.Fatalf("fence survived: %q", res.Code)
	}
	if !strings.Contains(res.Code, "module m") {
		t.Fatalf("module lost: %q", res.Code)
	}
}

func TestStripChatProse(t *testing.T) {
	src := "Certainly — the corrected implementation is below.\n\n" + clean
	res := Fix(src)
	if strings.Contains(res.Code, "Certainly") {
		t.Fatalf("prose survived: %q", res.Code)
	}
	if !strings.HasPrefix(strings.TrimSpace(res.Code), "module") {
		t.Fatalf("should start at module: %q", res.Code)
	}
}

func TestProseOnlyInputUntouched(t *testing.T) {
	src := "I could not generate the code, sorry."
	res := Fix(src)
	if res.Code != src {
		t.Fatalf("prose-only input should be untouched: %q", res.Code)
	}
}

func TestHoistTimescale(t *testing.T) {
	src := "module m(input a, output y);\n`timescale 1ns/1ps\nassign y = a;\nendmodule\n"
	res := Fix(src)
	lines := strings.Split(strings.TrimSpace(res.Code), "\n")
	if !strings.HasPrefix(lines[0], "`timescale") {
		t.Fatalf("timescale not hoisted:\n%s", res.Code)
	}
	if !applied(res, "hoist-timescale") {
		t.Errorf("rule not recorded: %v", res.Applied)
	}
}

func TestTimescaleAtTopUntouched(t *testing.T) {
	src := "`timescale 1ns/1ps\n" + clean
	res := Fix(src)
	if applied(res, "hoist-timescale") {
		t.Error("legal top-of-file timescale should not trigger the rule")
	}
}

func TestDropDuplicateEndmodule(t *testing.T) {
	src := clean + "endmodule\n"
	res := Fix(src)
	if got := strings.Count(res.Code, "endmodule"); got != 1 {
		t.Fatalf("%d endmodules survive:\n%s", got, res.Code)
	}
}

func TestInteriorEndmoduleSurvives(t *testing.T) {
	// An endmodule in the middle is a real structural error the agent
	// should see; only trailing surplus is cleaned.
	src := "module m(input a, output y);\nendmodule\nassign y = a;\nendmodule\n"
	res := Fix(src)
	if !strings.Contains(res.Code, "assign y = a;") {
		t.Fatalf("body lost:\n%s", res.Code)
	}
}

func TestDropDuplicateEndmoduleWithModuleInIdentifier(t *testing.T) {
	// `top_module` contains the substring "module"; counting substrings
	// instead of word-boundary tokens inflated the open count so stacked
	// duplicate endmodules were never removed for typical VerilogEval
	// sources. Regression for the token-counting fix.
	src := "module top_module(input a, output y);\n\tassign y = a;\nendmodule\nendmodule\n"
	res := Fix(src)
	if got := strings.Count(res.Code, "endmodule"); got != 1 {
		t.Fatalf("%d endmodules survive:\n%s", got, res.Code)
	}
	if !applied(res, "drop-duplicate-endmodule") {
		t.Errorf("rule not recorded: %v", res.Applied)
	}
}

func TestDropDuplicateEndmoduleStackWithBlanks(t *testing.T) {
	src := "module top_module(input a, output y);\n\tassign y = a;\nendmodule\n\nendmodule\n\nendmodule\n"
	res := Fix(src)
	if got := strings.Count(res.Code, "endmodule"); got != 1 {
		t.Fatalf("%d endmodules survive:\n%s", got, res.Code)
	}
}

func TestStripChatProseBlankLinesOnlyNotReported(t *testing.T) {
	// Only blank lines before the first code line is not prose; the rule
	// must not report a change (it would pollute Transcript.FixerRules).
	src := "\n\n" + clean
	next, changed := stripChatProse(src)
	if changed {
		t.Fatalf("blank-only prefix reported as a change: %q", next)
	}
	if next != src {
		t.Fatalf("input modified without change report: %q", next)
	}
	if res := Fix(src); applied(res, "strip-chat-prose") {
		t.Errorf("strip-chat-prose recorded for blank-only prefix: %v", res.Applied)
	}
}

func TestStripChatProseStillFiresWithBlankAndProseMix(t *testing.T) {
	src := "\nHere is the corrected code:\n\n" + clean
	res := Fix(src)
	if strings.Contains(res.Code, "corrected code") {
		t.Fatalf("prose survives: %q", res.Code)
	}
	if !applied(res, "strip-chat-prose") {
		t.Errorf("rule not recorded: %v", res.Applied)
	}
}

func TestNormalizeSmartQuotes(t *testing.T) {
	src := "module m(input a, output y);\n\tassign y = a; // it’s “fine”\nendmodule\n"
	res := Fix(src)
	if strings.ContainsAny(res.Code, "‘’“”") {
		t.Fatalf("smart quotes survive: %q", res.Code)
	}
}

func TestTrimTrailingGarbage(t *testing.T) {
	src := clean + "\nThis implementation reverses the bits as requested."
	res := Fix(src)
	if strings.Contains(res.Code, "reverses the bits") {
		t.Fatalf("trailing prose survives: %q", res.Code)
	}
}

func TestRulesAreIdempotent(t *testing.T) {
	srcs := []string{
		"```verilog\n" + clean + "```",
		"prose first\n" + clean,
		clean + "endmodule\n",
		"module m(input a, output y);\n`timescale 1ns/1ps\nassign y = a;\nendmodule",
	}
	for _, src := range srcs {
		once := Fix(src)
		twice := Fix(once.Code)
		if twice.Code != once.Code {
			t.Errorf("not idempotent:\nfirst:\n%s\nsecond:\n%s", once.Code, twice.Code)
		}
	}
}

func applied(res Result, rule string) bool {
	for _, r := range res.Applied {
		if r == rule {
			return true
		}
	}
	return false
}
