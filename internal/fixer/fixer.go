// Package fixer is the paper's "simple rule-based syntax fixer": a
// deterministic pre-pass applied to every LLM-generated Verilog sample
// before compilation (§4 Setup). It repairs the trivial, mechanical defects
// LLM output tends to carry — markdown fences, chat prose around the code,
// misplaced `timescale directives, duplicated endmodule keywords, smart
// quotes — so the agent spends its iterations on real syntax errors.
package fixer

import (
	"regexp"
	"strings"
)

// Result reports what the fixer did.
type Result struct {
	// Code is the cleaned source.
	Code string
	// Applied lists the names of the rules that changed the input, in
	// application order.
	Applied []string
}

// Rule is one deterministic rewrite. Apply returns the (possibly
// unchanged) source and whether it modified anything.
type Rule struct {
	Name  string
	Apply func(src string) (string, bool)
}

// Rules returns the standard rule set, in application order.
func Rules() []Rule {
	return []Rule{
		{Name: "extract-markdown-block", Apply: extractMarkdownBlock},
		{Name: "strip-chat-prose", Apply: stripChatProse},
		{Name: "normalize-smart-quotes", Apply: normalizeSmartQuotes},
		{Name: "hoist-timescale", Apply: hoistTimescale},
		{Name: "drop-duplicate-endmodule", Apply: dropDuplicateEndmodule},
		{Name: "trim-trailing-garbage", Apply: trimTrailingGarbage},
	}
}

// Fix applies every rule once, in order.
func Fix(src string) Result {
	res := Result{Code: src}
	for _, r := range Rules() {
		next, changed := r.Apply(res.Code)
		if changed {
			res.Code = next
			res.Applied = append(res.Applied, r.Name)
		}
	}
	return res
}

// extractMarkdownBlock pulls the contents of the first fenced code block
// when the input looks like a chat answer (```verilog ... ```).
func extractMarkdownBlock(src string) (string, bool) {
	if !strings.Contains(src, "```") {
		return src, false
	}
	lines := strings.Split(src, "\n")
	var out []string
	in := false
	found := false
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			if !in {
				in = true
				found = true
				continue
			}
			break // end of the first block
		}
		if in {
			out = append(out, line)
		}
	}
	if !found || len(out) == 0 {
		// Unbalanced fence: just delete fence lines.
		var kept []string
		for _, line := range lines {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n"), true
	}
	return strings.Join(out, "\n"), true
}

// stripChatProse deletes leading lines before the first structural Verilog
// line (module/directive/comment), which removes "Sure! Here is the
// corrected code:" style prefixes.
func stripChatProse(src string) (string, bool) {
	lines := strings.Split(src, "\n")
	start := 0
	sawProse := false
	for i, line := range lines {
		t := strings.TrimSpace(line)
		if t == "" {
			continue
		}
		if looksLikeVerilogStart(t) {
			start = i
			break
		}
		// A non-code line before any code: candidate prose. Keep
		// scanning; if code follows, everything before it goes.
		sawProse = true
		start = -1
	}
	// start == -1: no code found at all — leave untouched and let the
	// compiler complain. !sawProse: only blank lines precede the first
	// code line, which is not prose; reporting a change here would log the
	// rule in Transcript.FixerRules for inputs it did not clean.
	if start <= 0 || !sawProse {
		return src, false
	}
	return strings.Join(lines[start:], "\n"), true
}

func looksLikeVerilogStart(t string) bool {
	return strings.HasPrefix(t, "module") ||
		strings.HasPrefix(t, "`") ||
		strings.HasPrefix(t, "//") ||
		strings.HasPrefix(t, "/*")
}

// normalizeSmartQuotes replaces typographic quotes that chat output
// sometimes carries into string or literal positions.
func normalizeSmartQuotes(src string) (string, bool) {
	replaced := strings.NewReplacer(
		"‘", "'", "’", "'",
		"“", `"`, "”", `"`,
	).Replace(src)
	return replaced, replaced != src
}

// hoistTimescale moves `timescale directives that appear inside a module
// body to the top of the file. A misplaced timescale is the paper's
// example of what the rule-based fixer handles.
func hoistTimescale(src string) (string, bool) {
	lines := strings.Split(src, "\n")
	var directives, rest []string
	inModule := false
	changed := false
	for _, line := range lines {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "module") {
			inModule = true
		}
		if strings.HasPrefix(t, "`timescale") && inModule {
			directives = append(directives, line)
			changed = true
			continue
		}
		rest = append(rest, line)
		if strings.HasPrefix(t, "endmodule") {
			inModule = false
		}
	}
	if !changed {
		return src, false
	}
	return strings.Join(append(directives, rest...), "\n"), true
}

// moduleTokenRe and endmoduleTokenRe match the keywords as whole tokens:
// substring counting would see a spurious "module" inside identifiers like
// `top_module` (ubiquitous in VerilogEval sources) and inflate the open
// count, so stacked duplicate `endmodule`s were never removed. \b treats
// `_` as a word character, so neither regexp matches inside identifiers,
// and `module` does not match inside `endmodule`.
var (
	moduleTokenRe    = regexp.MustCompile(`\bmodule\b`)
	endmoduleTokenRe = regexp.MustCompile(`\bendmodule\b`)
)

// dropDuplicateEndmodule removes endmodule keywords beyond the balance
// point (one endmodule per module).
func dropDuplicateEndmodule(src string) (string, bool) {
	closes := len(endmoduleTokenRe.FindAllStringIndex(src, -1))
	opens := len(moduleTokenRe.FindAllStringIndex(src, -1))
	if closes <= opens || closes <= 1 {
		return src, false
	}
	// Delete only directly stacked duplicates at the bottom of the file
	// ("endmodule\nendmodule"), the shape LLM output actually produces.
	// An interior surplus endmodule is a real structural error the agent
	// should get to see.
	lines := strings.Split(src, "\n")
	surplus := closes - opens
	changed := false
	for i := len(lines) - 1; i >= 1 && surplus > 0; i-- {
		t := strings.TrimSpace(lines[i])
		if t == "" {
			continue
		}
		if t != "endmodule" {
			break
		}
		// previous non-blank line must also be a lone endmodule
		j := i - 1
		for j >= 0 && strings.TrimSpace(lines[j]) == "" {
			j--
		}
		if j < 0 || strings.TrimSpace(lines[j]) != "endmodule" {
			break
		}
		lines = append(lines[:i], lines[i+1:]...)
		surplus--
		changed = true
		i = j + 1 // re-examine from the surviving endmodule
	}
	if !changed {
		return src, false
	}
	return strings.Join(lines, "\n"), true
}

// trimTrailingGarbage removes prose after the final endmodule.
func trimTrailingGarbage(src string) (string, bool) {
	idx := strings.LastIndex(src, "endmodule")
	if idx < 0 {
		return src, false
	}
	end := idx + len("endmodule")
	tail := src[end:]
	if strings.TrimSpace(tail) == "" {
		return src, false
	}
	return src[:end] + "\n", true
}
