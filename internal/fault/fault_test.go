package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestParse: the profile grammar round-trips valid entries and rejects
// unknown points, bad rates, and malformed entries with useful errors.
func TestParse(t *testing.T) {
	r, err := Parse("store.write.error:0.25; llm.transient:1.0 ; sim.stall:0.5:7ms", 42)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if got := snap[StoreWrite].Rate; got != 0.25 {
		t.Fatalf("store.write.error rate = %v, want 0.25", got)
	}
	if got := snap[SimStall].DelayMS; got != 7 {
		t.Fatalf("sim.stall delay = %vms, want 7", got)
	}
	if r.Seed() != 42 {
		t.Fatalf("seed = %d", r.Seed())
	}

	for _, bad := range []string{
		"no.such.point:0.5",
		"store.write.error:1.5",
		"store.write.error:-0.1",
		"store.write.error",
		"store.write.error:0.5:not-a-duration",
		"store.write.error:0.5:1ms:extra",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
	if _, err := Parse("no.such.point:0.5", 1); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("unknown-point error should list the catalog, got %v", err)
	}

	// Empty profile: valid, empty registry.
	if r, err := Parse("", 1); err != nil || len(r.Snapshot()) != 0 {
		t.Fatalf("empty profile: %v, %d points", err, len(r.Snapshot()))
	}
}

// TestDeterministicSchedule: the same seed replays the exact same fire
// schedule; a different seed diverges.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []bool {
		r := MustParse("llm.transient:0.3", seed)
		out := make([]bool, 200)
		for i := range out {
			out[i], _ = r.decide(LLMTransient)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical 200-decision schedule")
	}
}

// TestRateAccuracy: over many decisions the fire fraction tracks the
// configured rate, and the 0/1 extremes are exact.
func TestRateAccuracy(t *testing.T) {
	r := MustParse("store.read.error:0.2;store.write.error:0;store.fsync.error:1", 3)
	fired := 0
	for i := 0; i < 5000; i++ {
		if f, _ := r.decide(StoreRead); f {
			fired++
		}
		if f, _ := r.decide(StoreWrite); f {
			t.Fatal("rate-0 point fired")
		}
		if f, _ := r.decide(StoreFsync); !f {
			t.Fatal("rate-1 point did not fire")
		}
	}
	frac := float64(fired) / 5000
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("rate-0.2 point fired %.3f of the time", frac)
	}
	snap := r.Snapshot()
	if snap[StoreRead].Decisions != 5000 || snap[StoreRead].Fired != uint64(fired) {
		t.Fatalf("snapshot tallies off: %+v vs fired=%d", snap[StoreRead], fired)
	}
}

// TestLimit: SetLimit caps fires — "fail twice then recover" schedules.
func TestLimit(t *testing.T) {
	r := MustParse("llm.transient:1", 1)
	if err := r.SetLimit(LLMTransient, 2); err != nil {
		t.Fatal(err)
	}
	fires := 0
	for i := 0; i < 10; i++ {
		if f, _ := r.decide(LLMTransient); f {
			fires++
		}
	}
	if fires != 2 {
		t.Fatalf("limited point fired %d times, want 2", fires)
	}
	if err := r.SetLimit("llm.persistent", 1); err == nil {
		t.Fatal("SetLimit on unconfigured point accepted")
	}
}

// TestGlobalHelpers: uninstalled registry is inert; installed, the
// helpers fire per the profile and Snapshot reflects it.
func TestGlobalHelpers(t *testing.T) {
	Uninstall()
	if Enabled() || Hit(WorkerPanic) || Err(StoreRead) != nil || Snapshot() != nil {
		t.Fatal("uninstalled registry not inert")
	}
	Delay(SimStall) // must not sleep or panic

	Install(MustParse("store.read.error:1;worker.panic:0", 9))
	defer Uninstall()
	if !Enabled() {
		t.Fatal("Enabled() false after Install")
	}
	err := Err(StoreRead)
	if err == nil || !IsInjected(err) {
		t.Fatalf("rate-1 Err = %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != StoreRead {
		t.Fatalf("typed error wrong: %v", err)
	}
	if Hit(WorkerPanic) {
		t.Fatal("rate-0 point fired")
	}
	if Hit("not.configured") {
		t.Fatal("unconfigured point fired")
	}
	if snap := Snapshot(); snap[StoreRead].Fired != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestDelaySleeps: a fired stall point sleeps its configured duration.
func TestDelaySleeps(t *testing.T) {
	Install(MustParse("store.slow:1:30ms", 5))
	defer Uninstall()
	start := time.Now()
	Delay(StoreSlow)
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("Delay slept only %v", el)
	}
}

// TestIsInjectedWrapped: IsInjected sees through wrapping.
func TestIsInjectedWrapped(t *testing.T) {
	inner := &Error{Point: StoreFsync}
	if !IsInjected(inner) {
		t.Fatal("bare")
	}
	if !IsInjected(errors.Join(errors.New("outer"), inner)) {
		t.Fatal("wrapped")
	}
	if IsInjected(errors.New("plain")) {
		t.Fatal("plain error reported as injected")
	}
}
