// Package fault is a deterministic, seedable fault-injection registry
// for the serving spine. Production code is threaded with named
// injection points (store I/O errors and torn writes, transient and
// persistent LLM backend failures, garbage LLM output, compile/sim
// stalls, worker and handler panics); each point consults the globally
// installed registry, which decides per the configured probability
// whether the fault fires.
//
// Decisions are deterministic: the nth decision at point p under seed s
// is a pure function of (s, p, n), so the same seed replays the same
// fault schedule regardless of wall clock or goroutine interleaving of
// *other* points. With no registry installed (the production default)
// every helper is a single atomic load and a branch — no locks, no
// allocation, no RNG draw — so an empty profile leaves behavior and
// output byte-identical to a build without injection.
//
// Profiles are activated programmatically in tests
// (fault.Install(fault.MustParse(...)); defer fault.Uninstall()) or
// from the CLIs via rtlfixerd/benchmark -fault-profile. The grammar is
// semicolon-separated entries:
//
//	point:rate            fire with probability rate in [0, 1]
//	point:rate:duration   stall points: sleep duration when fired
//
// e.g. "store.write.error:0.05;llm.transient:0.2;sim.stall:0.1:5ms".
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The catalog of injection points. Parse rejects names outside it, so a
// typo in a -fault-profile fails at startup instead of silently never
// firing.
const (
	StoreRead     = "store.read.error"  // journal/CAS record read fails
	StoreWrite    = "store.write.error" // journal append write fails
	StoreTorn     = "store.write.torn"  // journal append writes half a batch, then fails
	StoreFsync    = "store.fsync.error" // journal fsync fails after a full write
	StoreCAS      = "store.cas.error"   // CAS segment write fails during compaction
	StoreSlow     = "store.slow"        // store I/O stalls (uses the point's duration)
	LLMTransient  = "llm.transient"     // LLM backend fails once; a retry may succeed
	LLMPersistent = "llm.persistent"    // LLM backend fails every attempt
	LLMGarbage    = "llm.garbage"       // LLM returns garbled, uncompilable output
	CompileStall  = "compile.stall"     // compiler front-end stalls (duration)
	SimStall      = "sim.stall"         // simulator settle loop stalls (duration)
	WorkerPanic   = "worker.panic"      // pipeline worker panics mid-run
	HandlerPanic  = "handler.panic"     // HTTP handler panics before admission
	AnalyzePanic  = "analyze.panic"     // semantic analyzer panics on a source
)

var known = map[string]bool{
	StoreRead: true, StoreWrite: true, StoreTorn: true, StoreFsync: true,
	StoreCAS: true, StoreSlow: true,
	LLMTransient: true, LLMPersistent: true, LLMGarbage: true,
	CompileStall: true, SimStall: true,
	WorkerPanic: true, HandlerPanic: true, AnalyzePanic: true,
}

// Points returns the sorted catalog of known injection points.
func Points() []string {
	out := make([]string, 0, len(known))
	for p := range known {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Error is the typed error returned by fired error-injection points, so
// resilience layers and tests can tell an injected fault from a real
// one (errors.As / IsInjected).
type Error struct {
	Point string
}

func (e *Error) Error() string { return "fault: injected failure at " + e.Point }

// IsInjected reports whether any error in err's chain is an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// point is one configured injection point. decisions counts every
// consult (fired or not) so the schedule is a pure function of the
// consult sequence number.
type point struct {
	rate  float64
	delay time.Duration
	limit uint64 // 0 = unlimited; else stop firing after limit fires

	decisions uint64
	fired     uint64
}

// Registry is a set of configured injection points under one seed. The
// zero Registry is not usable; construct with New or Parse.
type Registry struct {
	seed   int64
	mu     sync.Mutex
	points map[string]*point
}

// New returns an empty registry with the given schedule seed.
func New(seed int64) *Registry {
	return &Registry{seed: seed, points: make(map[string]*point)}
}

// Set configures (or reconfigures) one injection point. rate is the
// per-decision fire probability in [0, 1]; delay is the stall duration
// for Delay points (ignored by Hit/Err points).
func (r *Registry) Set(name string, rate float64, delay time.Duration) error {
	if !known[name] {
		return fmt.Errorf("fault: unknown injection point %q (known: %s)", name, strings.Join(Points(), ", "))
	}
	if rate < 0 || rate > 1 {
		return fmt.Errorf("fault: point %s rate %v outside [0, 1]", name, rate)
	}
	if delay < 0 {
		return fmt.Errorf("fault: point %s negative delay %v", name, delay)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points[name] = &point{rate: rate, delay: delay}
	return nil
}

// SetLimit caps how many times a configured point fires; after limit
// fires it goes quiet. Used by tests to script "fail twice, then
// recover" schedules. The point must already be Set.
func (r *Registry) SetLimit(name string, limit uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.points[name]
	if !ok {
		return fmt.Errorf("fault: SetLimit on unconfigured point %q", name)
	}
	p.limit = limit
	return nil
}

// Parse builds a registry from the -fault-profile grammar:
// "point:rate[:duration]" entries separated by ';' (or ','). An empty
// profile yields an empty registry (installing it is a no-op profile,
// though callers normally skip Install entirely).
func Parse(profile string, seed int64) (*Registry, error) {
	r := New(seed)
	for _, entry := range strings.FieldsFunc(profile, func(c rune) bool { return c == ';' || c == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("fault: bad profile entry %q (want point:rate[:duration])", entry)
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad rate in %q: %v", entry, err)
		}
		var delay time.Duration
		if len(parts) == 3 {
			delay, err = time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("fault: bad duration in %q: %v", entry, err)
			}
		}
		if err := r.Set(parts[0], rate, delay); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustParse is Parse for tests and package-level defaults; it panics on
// a malformed profile.
func MustParse(profile string, seed int64) *Registry {
	r, err := Parse(profile, seed)
	if err != nil {
		panic(err)
	}
	return r
}

// decide draws the next decision for name: deterministic in
// (seed, name, decision#). Returns whether the point fired and its
// configured delay.
func (r *Registry) decide(name string) (bool, time.Duration) {
	r.mu.Lock()
	p, ok := r.points[name]
	if !ok {
		r.mu.Unlock()
		return false, 0
	}
	n := p.decisions
	p.decisions++
	fire := schedule(r.seed, name, n) < p.rate
	if fire && p.limit > 0 && p.fired >= p.limit {
		fire = false
	}
	if fire {
		p.fired++
	}
	d := p.delay
	r.mu.Unlock()
	return fire, d
}

// schedule maps (seed, point, n) to a uniform draw in [0, 1) via FNV-64a.
func schedule(seed int64, name string, n uint64) float64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
		buf[8+i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// PointStats is one point's consult/fire tally, surfaced in /v1/stats
// so chaos runs can assert the schedule actually engaged.
type PointStats struct {
	Rate      float64 `json:"rate"`
	Decisions uint64  `json:"decisions"`
	Fired     uint64  `json:"fired"`
	DelayMS   float64 `json:"delay_ms,omitempty"`
}

// Snapshot returns per-point tallies.
func (r *Registry) Snapshot() map[string]PointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]PointStats, len(r.points))
	for name, p := range r.points {
		out[name] = PointStats{
			Rate:      p.rate,
			Decisions: p.decisions,
			Fired:     p.fired,
			DelayMS:   float64(p.delay) / float64(time.Millisecond),
		}
	}
	return out
}

// Seed returns the registry's schedule seed.
func (r *Registry) Seed() int64 { return r.seed }

// The globally installed registry. Hot paths pay one atomic load when
// no registry is installed.
var active atomic.Pointer[Registry]

// Install makes r the globally consulted registry.
func Install(r *Registry) { active.Store(r) }

// Uninstall removes the global registry; all points go quiet.
func Uninstall() { active.Store(nil) }

// Enabled reports whether a registry is installed. Call sites with
// non-trivial fault setup (e.g. building a retry closure) may use it to
// keep the production path allocation-free.
func Enabled() bool { return active.Load() != nil }

// Hit reports whether the named point fires on this decision.
func Hit(name string) bool {
	r := active.Load()
	if r == nil {
		return false
	}
	fire, _ := r.decide(name)
	return fire
}

// Err returns an injected *Error when the named point fires, else nil.
func Err(name string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	if fire, _ := r.decide(name); fire {
		return &Error{Point: name}
	}
	return nil
}

// Delay sleeps the point's configured duration when the named point
// fires. Points configured without a duration default to 5ms so a
// profile like "sim.stall:0.5" still visibly stalls.
func Delay(name string) {
	r := active.Load()
	if r == nil {
		return
	}
	fire, d := r.decide(name)
	if !fire {
		return
	}
	if d <= 0 {
		d = 5 * time.Millisecond
	}
	time.Sleep(d)
}

// Snapshot returns the installed registry's per-point tallies, or nil
// when injection is off.
func Snapshot() map[string]PointStats {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.Snapshot()
}
