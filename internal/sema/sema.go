// Package sema elaborates a parsed Verilog module: it builds the symbol
// table, folds constant expressions, and runs the semantic checks whose
// failures make up the bulk of the RTLFixer error taxonomy — undeclared
// identifiers (the paper's 'clk' example), constant indices outside a
// declared range (the paper's Fig. 6 failure case), procedural assignments
// to nets ("not a valid l-value"), continuous assignments to regs, port
// mismatches, and duplicate declarations.
//
// Elaboration only runs when parsing produced no errors, mirroring real
// compilers: a parse error masks the semantic errors behind it, which is
// exactly the cascade behaviour that makes iterative (ReAct) debugging
// outperform one-shot fixes.
package sema

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/diag"
	"repro/internal/verilog"
)

// Signal is one elaborated net, variable, or port.
type Signal struct {
	Name   string
	Dir    verilog.PortDir // DirNone for internal signals
	Kind   verilog.NetKind // KindNone means plain wire
	Signed bool
	// MSB/LSB are the declared bounds; for scalars both are 0.
	MSB, LSB int
	Pos      diag.Pos
	// Init is the declaration initializer, if any (wire x = a & b).
	Init verilog.Expr
}

// Width returns the signal's width in bits.
func (s *Signal) Width() int {
	d := s.MSB - s.LSB
	if d < 0 {
		d = -d
	}
	return d + 1
}

// InRange reports whether a constant bit index is inside the declared
// range.
func (s *Signal) InRange(idx int) bool {
	lo, hi := s.LSB, s.MSB
	if lo > hi {
		lo, hi = hi, lo
	}
	return idx >= lo && idx <= hi
}

// IsVariable reports whether the signal may be a procedural assignment
// target.
func (s *Signal) IsVariable() bool { return s.Kind.IsVariable() }

// Design is the elaborated form of a single module.
type Design struct {
	Module  *verilog.Module
	Signals map[string]*Signal
	// PortOrder lists port names in header order.
	PortOrder []string
	// Params maps parameter/localparam names to their folded values.
	Params map[string]bitvec.Vec
}

// Signal returns the named signal or nil.
func (d *Design) Signal(name string) *Signal { return d.Signals[name] }

// Inputs returns the input port signals in header order.
func (d *Design) Inputs() []*Signal { return d.portsByDir(verilog.DirInput) }

// Outputs returns the output port signals in header order.
func (d *Design) Outputs() []*Signal { return d.portsByDir(verilog.DirOutput) }

func (d *Design) portsByDir(dir verilog.PortDir) []*Signal {
	var out []*Signal
	for _, name := range d.PortOrder {
		if s := d.Signals[name]; s != nil && s.Dir == dir {
			out = append(out, s)
		}
	}
	return out
}

// Elaborate elaborates the first module of the file and runs all semantic
// checks. The returned Design is nil when the file declares no module.
func Elaborate(file *verilog.SourceFile) (*Design, diag.List) {
	var diags diag.List
	if len(file.Modules) == 0 {
		diags.Add(diag.Errorf(diag.CatModuleStructure, diag.Pos{Line: 1},
			"source contains no module definition"))
		return nil, diags
	}
	if len(file.Modules) > 1 {
		m := file.Modules[1]
		diags.Add(diag.Errorf(diag.CatModuleStructure, m.Pos(),
			"multiple module definitions; expected exactly one (found '%s')", m.Name))
	}
	e := &elaborator{
		diags: diags,
		design: &Design{
			Module:  file.Modules[0],
			Signals: map[string]*Signal{},
			Params:  map[string]bitvec.Vec{},
		},
	}
	e.run()
	return e.design, e.diags
}

type elaborator struct {
	design *Design
	diags  diag.List
	// locals tracks block-scoped declarations (loop variables, block
	// integers) currently visible, by name.
	locals map[string]*Signal
}

func (e *elaborator) errorf(cat diag.Category, pos diag.Pos, sym, suggestion, format string, args ...any) {
	d := diag.Errorf(cat, pos, format, args...)
	d.Symbol = sym
	d.Suggestion = suggestion
	e.diags.Add(d)
}

func (e *elaborator) warnf(cat diag.Category, pos diag.Pos, sym, format string, args ...any) {
	d := diag.Warningf(cat, pos, format, args...)
	d.Symbol = sym
	e.diags.Add(d)
}

func (e *elaborator) run() {
	m := e.design.Module
	e.collectParams(m)
	e.collectSignals(m)
	e.checkPorts(m)
	e.checkDrivers(m)
	for _, item := range m.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			e.checkContinuousAssign(it)
		case *verilog.AlwaysBlock:
			e.checkAlways(it)
		case *verilog.InitialBlock:
			e.checkStmt(it.Body, procCtx{})
		case *verilog.Decl:
			for _, dn := range it.Names {
				if dn.Init != nil {
					e.checkExpr(dn.Init)
				}
			}
		}
	}
}

// ---------- symbol collection ----------

func (e *elaborator) collectParams(m *verilog.Module) {
	for _, item := range m.Items {
		pd, ok := item.(*verilog.ParamDecl)
		if !ok {
			continue
		}
		for _, dn := range pd.Names {
			if dn.Init == nil {
				e.errorf(diag.CatNonConstantExpr, dn.NamePos, dn.Name, "",
					"parameter '%s' has no value", dn.Name)
				continue
			}
			v, ok := e.evalConst(dn.Init)
			if !ok {
				e.errorf(diag.CatNonConstantExpr, dn.NamePos, dn.Name,
					"Parameter values must be constant expressions.",
					"parameter '%s' is not a constant expression", dn.Name)
				continue
			}
			if _, dup := e.design.Params[dn.Name]; dup {
				e.errorf(diag.CatDuplicateDecl, dn.NamePos, dn.Name, "",
					"parameter '%s' is already declared", dn.Name)
				continue
			}
			e.design.Params[dn.Name] = v
		}
	}
}

func (e *elaborator) declare(s *Signal) {
	if prev, ok := e.design.Signals[s.Name]; ok {
		// Merging rules: a header port may be completed by a body
		// declaration (non-ANSI style, or 'output [7:0] out' + 'reg
		// [7:0] out'). Everything else is a duplicate.
		if prev.Dir != verilog.DirNone && s.Dir == verilog.DirNone && prev.Kind == verilog.KindNone {
			if s.Width() != prev.Width() && s.MSB != 0 {
				e.errorf(diag.CatPortMismatch, s.Pos, s.Name,
					"Make the port and net declarations use the same range.",
					"declaration of '%s' as [%d:%d] conflicts with port range [%d:%d]",
					s.Name, s.MSB, s.LSB, prev.MSB, prev.LSB)
				return
			}
			prev.Kind = s.Kind
			prev.Init = s.Init
			return
		}
		if prev.Dir == verilog.DirNone && prev.Kind == verilog.KindNone && s.Dir != verilog.DirNone {
			// non-ANSI header name completed by a body port item
			prev.Dir = s.Dir
			prev.Kind = s.Kind
			prev.MSB, prev.LSB = s.MSB, s.LSB
			return
		}
		e.errorf(diag.CatDuplicateDecl, s.Pos, s.Name,
			"Remove or rename one of the declarations.",
			"'%s' is already declared at line %d", s.Name, prev.Pos.Line)
		return
	}
	e.design.Signals[s.Name] = s
}

func (e *elaborator) rangeBounds(r *verilog.Range, kind verilog.NetKind) (msb, lsb int) {
	if r == nil {
		if kind == verilog.KindInteger || kind == verilog.KindInt {
			return 31, 0
		}
		return 0, 0
	}
	m, okM := e.evalConstInt(r.MSB)
	l, okL := e.evalConstInt(r.LSB)
	if !okM || !okL {
		e.errorf(diag.CatNonConstantExpr, r.Pos(), "",
			"Range bounds must be constant expressions.",
			"vector range bounds must be constant")
		return 0, 0
	}
	return m, l
}

func (e *elaborator) collectSignals(m *verilog.Module) {
	for _, pd := range m.Ports {
		msb, lsb := e.rangeBounds(pd.VRange, pd.Kind)
		e.declare(&Signal{
			Name: pd.Name, Dir: pd.Dir, Kind: pd.Kind, Signed: pd.Signed,
			MSB: msb, LSB: lsb, Pos: pd.Pos(),
		})
		e.design.PortOrder = append(e.design.PortOrder, pd.Name)
	}
	for _, item := range m.Items {
		switch it := item.(type) {
		case *verilog.PortItem:
			msb, lsb := e.rangeBounds(it.VRange, it.Kind)
			e.declare(&Signal{
				Name: it.Name, Dir: it.Dir, Kind: it.Kind, Signed: it.Signed,
				MSB: msb, LSB: lsb, Pos: it.Pos(),
			})
		case *verilog.Decl:
			msb, lsb := e.rangeBounds(it.VRange, it.Kind)
			for _, dn := range it.Names {
				e.declare(&Signal{
					Name: dn.Name, Kind: it.Kind, Signed: it.Signed,
					MSB: msb, LSB: lsb, Pos: dn.NamePos, Init: dn.Init,
				})
			}
		}
	}
}

func (e *elaborator) checkPorts(m *verilog.Module) {
	// Non-ANSI header names must get a direction from the body.
	for _, pd := range m.Ports {
		if pd.Dir != verilog.DirNone {
			continue
		}
		s := e.design.Signals[pd.Name]
		if s == nil || s.Dir == verilog.DirNone {
			e.errorf(diag.CatPortMismatch, pd.Pos(), pd.Name,
				fmt.Sprintf("Add a direction declaration such as 'input %s;' or 'output %s;' in the module body.", pd.Name, pd.Name),
				"port '%s' appears in the port list but has no direction declaration", pd.Name)
		}
	}
	// Body port items must appear in the header list.
	inHeader := map[string]bool{}
	for _, pd := range m.Ports {
		inHeader[pd.Name] = true
	}
	for _, item := range m.Items {
		if pi, ok := item.(*verilog.PortItem); ok && !inHeader[pi.Name] {
			e.errorf(diag.CatPortMismatch, pi.Pos(), pi.Name,
				fmt.Sprintf("Add '%s' to the module's port list.", pi.Name),
				"'%s' is declared as a port but does not appear in the module port list", pi.Name)
		}
	}
}

// checkDrivers warns when a signal has more than one driver: two
// continuous assignments, or a continuous assignment plus an always
// block. Both reference compilers flag this; it stays warning-level here
// because two-state simulation still resolves deterministically.
func (e *elaborator) checkDrivers(m *verilog.Module) {
	// Every drive site is recorded so the diagnostic can point at each
	// offender: Pos is the first site, Related the remaining ones.
	assignSites := map[string][]diag.Pos{}
	alwaysSites := map[string][]diag.Pos{}

	for _, item := range m.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			for _, name := range lhsBaseNames(it.LHS) {
				assignSites[name] = append(assignSites[name], it.Pos())
			}
		case *verilog.AlwaysBlock:
			seen := map[string]bool{}
			verilog.WalkStmts(it.Body, func(s verilog.Stmt) {
				as, ok := s.(*verilog.AssignStmt)
				if !ok {
					return
				}
				for _, name := range lhsBaseNames(as.LHS) {
					if !seen[name] {
						seen[name] = true
						alwaysSites[name] = append(alwaysSites[name], as.Pos())
					}
				}
			})
		}
	}
	warn := func(sites []diag.Pos, name, format string, args ...any) {
		d := diag.Warningf(diag.CatMultipleDrivers, sites[0], format, args...)
		d.Symbol = name
		if len(sites) > 1 {
			d.Related = append([]diag.Pos(nil), sites[1:]...)
		}
		e.diags.Add(d)
	}
	for name, sites := range assignSites {
		// Bit/part-select assigns of disjoint slices are a legitimate
		// idiom only within always blocks; two whole-signal continuous
		// drivers are flagged regardless.
		if len(sites) > 1 {
			warn(sites, name, "'%s' is driven by %d continuous assignments", name, len(sites))
		}
		if aw := alwaysSites[name]; len(aw) > 0 {
			warn(append(append([]diag.Pos(nil), sites[0]), aw...), name,
				"'%s' is driven by both a continuous assignment and an always block", name)
		}
	}
	for name, sites := range alwaysSites {
		if len(sites) > 1 {
			warn(sites, name, "'%s' is driven from %d always blocks", name, len(sites))
		}
	}
}

// lhsBaseNames lists the root signal names an l-value writes.
func lhsBaseNames(lhs verilog.Expr) []string {
	switch x := lhs.(type) {
	case *verilog.Ident:
		return []string{x.Name}
	case *verilog.Index:
		return lhsBaseNames(x.X)
	case *verilog.Slice:
		return lhsBaseNames(x.X)
	case *verilog.Concat:
		var out []string
		for _, el := range x.Elems {
			out = append(out, lhsBaseNames(el)...)
		}
		return out
	}
	return nil
}

// ---------- expression checking ----------

// lookup resolves a name against locals, params, then module signals.
func (e *elaborator) lookup(name string) *Signal {
	if e.locals != nil {
		if s, ok := e.locals[name]; ok {
			return s
		}
	}
	if _, ok := e.design.Params[name]; ok {
		// Parameters behave as constants; model as a 32-bit signal for
		// range purposes.
		return &Signal{Name: name, MSB: 31, LSB: 0}
	}
	return e.design.Signals[name]
}

func (e *elaborator) checkExpr(expr verilog.Expr) {
	verilog.WalkExprs(expr, func(x verilog.Expr) {
		switch n := x.(type) {
		case *verilog.Ident:
			if e.lookup(n.Name) == nil {
				e.errorf(diag.CatUndeclaredIdent, n.Pos(), n.Name,
					"Verify the object name is correct. If the name is correct, declare the object.",
					"object \"%s\" is not declared", n.Name)
			}
		case *verilog.Index:
			e.checkIndex(n)
		case *verilog.Slice:
			e.checkSlice(n)
		case *verilog.Number:
			if _, err := n.Value(); err != nil {
				e.errorf(diag.CatMalformedLiteral, n.Pos(), n.Text, "",
					"invalid literal '%s': %v", n.Text, err)
			}
		}
	})
}

func (e *elaborator) baseSignal(x verilog.Expr) *Signal {
	id, ok := x.(*verilog.Ident)
	if !ok {
		return nil
	}
	return e.lookup(id.Name)
}

func (e *elaborator) checkIndex(n *verilog.Index) {
	sig := e.baseSignal(n.X)
	if sig == nil {
		return // undeclared base reported separately
	}
	idx, ok := e.evalConstInt(n.Idx)
	if !ok {
		return // dynamic index: legal, checked at runtime by the simulator
	}
	if !sig.InRange(idx) {
		e.errorf(diag.CatIndexOutOfRange, n.Pos(), sig.Name,
			fmt.Sprintf("Keep indices of '%s' within [%d:%d].", sig.Name, sig.MSB, sig.LSB),
			"index %d cannot fall outside the declared range [%d:%d] for vector '%s'",
			idx, sig.MSB, sig.LSB, sig.Name)
	}
}

func (e *elaborator) checkSlice(n *verilog.Slice) {
	sig := e.baseSignal(n.X)
	if sig == nil {
		return
	}
	switch n.Kind {
	case verilog.SelectConst:
		hi, okH := e.evalConstInt(n.Hi)
		lo, okL := e.evalConstInt(n.Lo)
		if !okH || !okL {
			e.errorf(diag.CatNonConstantExpr, n.Pos(), sig.Name,
				"Part-select bounds must be constant; use an indexed part-select '[base +: width]' for variable bases.",
				"part-select bounds of '%s' must be constant", sig.Name)
			return
		}
		if !sig.InRange(hi) || !sig.InRange(lo) {
			e.errorf(diag.CatIndexOutOfRange, n.Pos(), sig.Name,
				fmt.Sprintf("Keep part-selects of '%s' within [%d:%d].", sig.Name, sig.MSB, sig.LSB),
				"part-select [%d:%d] is outside the declared range [%d:%d] for vector '%s'",
				hi, lo, sig.MSB, sig.LSB, sig.Name)
			return
		}
		if (sig.MSB >= sig.LSB) != (hi >= lo) {
			e.errorf(diag.CatIndexOutOfRange, n.Pos(), sig.Name,
				"Match the part-select direction to the declaration.",
				"part-select [%d:%d] is reversed with respect to the declaration [%d:%d] of '%s'",
				hi, lo, sig.MSB, sig.LSB, sig.Name)
		}
	case verilog.SelectPlus, verilog.SelectMinus:
		w, ok := e.evalConstInt(n.Lo)
		if !ok {
			e.errorf(diag.CatNonConstantExpr, n.Pos(), sig.Name,
				"The width of an indexed part-select must be constant.",
				"indexed part-select width of '%s' must be constant", sig.Name)
			return
		}
		if w <= 0 || w > sig.Width() {
			e.errorf(diag.CatIndexOutOfRange, n.Pos(), sig.Name, "",
				"indexed part-select width %d is invalid for vector '%s' of width %d",
				w, sig.Name, sig.Width())
		}
	}
}

// ---------- assignment checking ----------

func (e *elaborator) checkContinuousAssign(a *verilog.AssignItem) {
	e.checkExpr(a.RHS)
	e.checkLHS(a.LHS, lhsContinuous)
	e.checkWidths(a.LHS, a.RHS, a.Pos())
}

type procCtx struct {
	inAlways bool
	clocked  bool
}

func (e *elaborator) checkAlways(b *verilog.AlwaysBlock) {
	for _, ev := range b.Events {
		e.checkExpr(ev.Signal)
	}
	ctx := procCtx{inAlways: true, clocked: b.IsClocked()}
	e.checkStmt(b.Body, ctx)
}

func (e *elaborator) checkStmt(s verilog.Stmt, ctx procCtx) {
	switch st := s.(type) {
	case nil:
	case *verilog.BlockStmt:
		// Block-local declarations become visible for the block body.
		saved := e.locals
		e.locals = map[string]*Signal{}
		for k, v := range saved {
			e.locals[k] = v
		}
		for _, d := range st.Decls {
			msb, lsb := e.rangeBounds(d.VRange, d.Kind)
			for _, dn := range d.Names {
				e.locals[dn.Name] = &Signal{
					Name: dn.Name, Kind: d.Kind, MSB: msb, LSB: lsb, Pos: dn.NamePos,
				}
			}
		}
		for _, sub := range st.Stmts {
			e.checkStmt(sub, ctx)
		}
		e.locals = saved
	case *verilog.AssignStmt:
		e.checkExpr(st.RHS)
		mode := lhsProcedural
		if !ctx.inAlways {
			mode = lhsInitial
		}
		e.checkLHS(st.LHS, mode)
		e.checkWidths(st.LHS, st.RHS, st.Pos())
	case *verilog.IfStmt:
		e.checkExpr(st.Cond)
		e.checkStmt(st.Then, ctx)
		e.checkStmt(st.Else, ctx)
	case *verilog.CaseStmt:
		e.checkExpr(st.Subject)
		for _, item := range st.Items {
			for _, l := range item.Labels {
				e.checkExpr(l)
			}
			e.checkStmt(item.Body, ctx)
		}
	case *verilog.ForStmt:
		saved := e.locals
		if st.LoopVar != "" {
			e.locals = map[string]*Signal{}
			for k, v := range saved {
				e.locals[k] = v
			}
			e.locals[st.LoopVar] = &Signal{
				Name: st.LoopVar, Kind: verilog.KindInt, MSB: 31, LSB: 0, Pos: st.LoopVarPos,
			}
		}
		if st.Init != nil {
			e.checkExpr(st.Init.RHS)
			e.checkLHS(st.Init.LHS, lhsLoop)
		}
		e.checkExpr(st.Cond)
		if st.Step != nil {
			e.checkExpr(st.Step.RHS)
		}
		e.checkStmt(st.Body, ctx)
		e.locals = saved
	case *verilog.NullStmt:
	}
}

type lhsMode int

const (
	lhsContinuous lhsMode = iota // assign ... = ...
	lhsProcedural                // inside always
	lhsInitial                   // inside initial
	lhsLoop                      // for-loop index assignment
)

func (e *elaborator) checkLHS(lhs verilog.Expr, mode lhsMode) {
	switch x := lhs.(type) {
	case *verilog.Concat:
		for _, el := range x.Elems {
			e.checkLHS(el, mode)
		}
		return
	case *verilog.Index:
		e.checkIndex(x)
		e.checkLHSBase(x.X, lhs.Pos(), mode)
		return
	case *verilog.Slice:
		e.checkSlice(x)
		e.checkLHSBase(x.X, lhs.Pos(), mode)
		return
	case *verilog.Ident:
		e.checkLHSBase(x, x.Pos(), mode)
		return
	default:
		e.errorf(diag.CatInvalidLValue, lhs.Pos(), "",
			"Assignment targets must be signals, bit-selects, part-selects, or concatenations of these.",
			"expression is not a valid assignment target")
	}
}

func (e *elaborator) checkLHSBase(base verilog.Expr, pos diag.Pos, mode lhsMode) {
	id, ok := base.(*verilog.Ident)
	if !ok {
		e.errorf(diag.CatInvalidLValue, pos, "", "",
			"expression is not a valid assignment target")
		return
	}
	sig := e.lookup(id.Name)
	if sig == nil {
		e.errorf(diag.CatUndeclaredIdent, pos, id.Name,
			fmt.Sprintf("Declare '%s' before assigning to it.", id.Name),
			"object '%s' is not declared", id.Name)
		return
	}
	if _, isParam := e.design.Params[id.Name]; isParam {
		e.errorf(diag.CatInvalidLValue, pos, id.Name,
			"Parameters are constants and cannot be assigned.",
			"parameter '%s' cannot be an assignment target", id.Name)
		return
	}
	if sig.Dir == verilog.DirInput {
		e.errorf(diag.CatInvalidLValue, pos, id.Name,
			fmt.Sprintf("'%s' is an input port; drive a different signal or change the port direction.", id.Name),
			"input port '%s' cannot be assigned inside the module", id.Name)
		return
	}
	switch mode {
	case lhsContinuous:
		if sig.Kind.IsVariable() {
			e.errorf(diag.CatAssignToReg, pos, id.Name,
				fmt.Sprintf("Declare '%s' as a wire, or move the assignment into an always block.", id.Name),
				"continuous assignment to variable '%s'; 'assign' targets must be nets", id.Name)
		}
	case lhsProcedural, lhsInitial:
		if !sig.Kind.IsVariable() {
			e.errorf(diag.CatInvalidLValue, pos, id.Name,
				fmt.Sprintf("Declare '%s' as 'reg' (or 'logic'), or use an 'assign' statement instead of an always block.", id.Name),
				"'%s' is not a valid l-value; procedural assignments require a variable (reg), not a net", id.Name)
		}
	case lhsLoop:
		if !sig.Kind.IsVariable() {
			e.errorf(diag.CatInvalidLValue, pos, id.Name,
				"Declare the loop index as 'integer'.",
				"loop index '%s' must be a variable such as an integer", id.Name)
		}
	}
}

// checkWidths emits a width-mismatch warning when both sides have
// statically-known widths that disagree. Warnings never fail compilation.
func (e *elaborator) checkWidths(lhs, rhs verilog.Expr, pos diag.Pos) {
	lw, okL := e.exprWidth(lhs)
	rw, okR := e.exprWidth(rhs)
	if okL && okR && lw != rw {
		e.warnf(diag.CatWidthMismatch, pos, "",
			"assignment target is %d bits but expression is %d bits", lw, rw)
	}
}

// exprWidth computes a conservative static width. The second return is
// false when the width is context-dependent (plain numbers, comparisons
// feeding muxes, etc. are deliberately excluded to avoid noisy warnings).
func (e *elaborator) exprWidth(x verilog.Expr) (int, bool) {
	switch n := x.(type) {
	case *verilog.Ident:
		if sig := e.lookup(n.Name); sig != nil {
			return sig.Width(), true
		}
	case *verilog.Index:
		return 1, true
	case *verilog.Slice:
		switch n.Kind {
		case verilog.SelectConst:
			hi, okH := e.evalConstInt(n.Hi)
			lo, okL := e.evalConstInt(n.Lo)
			if okH && okL {
				d := hi - lo
				if d < 0 {
					d = -d
				}
				return d + 1, true
			}
		case verilog.SelectPlus, verilog.SelectMinus:
			if w, ok := e.evalConstInt(n.Lo); ok {
				return w, true
			}
		}
	case *verilog.Concat:
		total := 0
		for _, el := range n.Elems {
			w, ok := e.exprWidth(el)
			if !ok {
				return 0, false
			}
			total += w
		}
		return total, true
	case *verilog.Repl:
		cnt, okC := e.evalConstInt(n.Count)
		w, okW := e.exprWidth(n.Value)
		if okC && okW {
			return cnt * w, true
		}
	}
	return 0, false
}

// ---------- constant folding ----------

func (e *elaborator) evalConstInt(x verilog.Expr) (int, bool) {
	v, ok := e.evalConst(x)
	if !ok {
		return 0, false
	}
	u := v.Uint64()
	// Treat very large values as negative two's-complement 32-bit
	// constants: "i - 1" with i==0 folds to 0xFFFFFFFF, which must compare
	// as -1 for range checks.
	if v.Width() == 32 && u > 0x7FFFFFFF {
		return int(int32(uint32(u))), true
	}
	if u > 1<<31 {
		return 0, false
	}
	return int(u), true
}

func (e *elaborator) evalConst(x verilog.Expr) (bitvec.Vec, bool) {
	switch n := x.(type) {
	case *verilog.Number:
		v, err := n.Value()
		if err != nil {
			return bitvec.Vec{}, false
		}
		return v, true
	case *verilog.Ident:
		if v, ok := e.design.Params[n.Name]; ok {
			return v, true
		}
		return bitvec.Vec{}, false
	case *verilog.Unary:
		v, ok := e.evalConst(n.X)
		if !ok {
			return bitvec.Vec{}, false
		}
		switch n.Op {
		case "-":
			return bitvec.New(v.Width()).Sub(v), true
		case "+":
			return v, true
		case "~":
			return v.Not(), true
		case "!":
			if v.Bool() {
				return bitvec.FromUint64(1, 0), true
			}
			return bitvec.FromUint64(1, 1), true
		}
		return bitvec.Vec{}, false
	case *verilog.Binary:
		a, okA := e.evalConst(n.X)
		b, okB := e.evalConst(n.Y)
		if !okA || !okB {
			return bitvec.Vec{}, false
		}
		return foldBinary(n.Op, a, b)
	case *verilog.Ternary:
		c, ok := e.evalConst(n.Cond)
		if !ok {
			return bitvec.Vec{}, false
		}
		if c.Bool() {
			return e.evalConst(n.Then)
		}
		return e.evalConst(n.Else)
	case *verilog.Call:
		if n.Name == "$clog2" && len(n.Args) == 1 {
			v, ok := e.evalConst(n.Args[0])
			if !ok {
				return bitvec.Vec{}, false
			}
			u := v.Uint64()
			r := 0
			for (uint64(1) << r) < u {
				r++
			}
			return bitvec.FromUint64(32, uint64(r)), true
		}
		return bitvec.Vec{}, false
	}
	return bitvec.Vec{}, false
}

func foldBinary(op string, a, b bitvec.Vec) (bitvec.Vec, bool) {
	boolVec := func(c bool) bitvec.Vec {
		if c {
			return bitvec.FromUint64(1, 1)
		}
		return bitvec.FromUint64(1, 0)
	}
	switch op {
	case "+":
		return a.Add(b), true
	case "-":
		return a.Sub(b), true
	case "*":
		return a.Mul(b), true
	case "/":
		if b.Uint64() == 0 {
			return bitvec.Vec{}, false
		}
		return bitvec.FromUint64(maxW(a, b), a.Uint64()/b.Uint64()), true
	case "%":
		if b.Uint64() == 0 {
			return bitvec.Vec{}, false
		}
		return bitvec.FromUint64(maxW(a, b), a.Uint64()%b.Uint64()), true
	case "&":
		return a.And(b), true
	case "|":
		return a.Or(b), true
	case "^":
		return a.Xor(b), true
	case "<<", "<<<":
		return a.Shl(int(b.Uint64())), true
	case ">>", ">>>":
		return a.Shr(int(b.Uint64())), true
	case "==", "===":
		return boolVec(a.Eq(b)), true
	case "!=", "!==":
		return boolVec(!a.Eq(b)), true
	case "<":
		return boolVec(a.Ult(b)), true
	case ">":
		return boolVec(b.Ult(a)), true
	case "<=":
		return boolVec(!b.Ult(a)), true
	case ">=":
		return boolVec(!a.Ult(b)), true
	case "&&":
		return boolVec(a.Bool() && b.Bool()), true
	case "||":
		return boolVec(a.Bool() || b.Bool()), true
	}
	return bitvec.Vec{}, false
}

func maxW(a, b bitvec.Vec) int {
	if a.Width() > b.Width() {
		return a.Width()
	}
	return b.Width()
}
