package sema

import (
	"testing"

	"repro/internal/diag"
	"repro/internal/verilog"
)

func elab(t *testing.T, src string) (*Design, diag.List) {
	t.Helper()
	file, parseDiags := verilog.Parse(src)
	if parseDiags.HasErrors() {
		t.Fatalf("fixture has parse errors: %s", parseDiags.Summary())
	}
	return Elaborate(file)
}

func wantClean(t *testing.T, src string) *Design {
	t.Helper()
	d, diags := elab(t, src)
	if diags.HasErrors() {
		t.Fatalf("unexpected elaboration errors: %s", diags.Summary())
	}
	return d
}

func wantCategory(t *testing.T, src string, cat diag.Category) diag.List {
	t.Helper()
	_, diags := elab(t, src)
	for _, d := range diags {
		if d.Category == cat && d.Severity == diag.SeverityError {
			return diags
		}
	}
	t.Fatalf("expected %s error, got: %s", cat, diags.Summary())
	return nil
}

func TestElabCleanModule(t *testing.T) {
	d := wantClean(t, `
module top_module(input [7:0] in, output [7:0] out);
	assign out = ~in;
endmodule`)
	if d.Signal("in") == nil || d.Signal("out") == nil {
		t.Fatal("ports missing from symbol table")
	}
	if w := d.Signal("in").Width(); w != 8 {
		t.Fatalf("in width = %d, want 8", w)
	}
	if len(d.Inputs()) != 1 || len(d.Outputs()) != 1 {
		t.Fatalf("inputs=%d outputs=%d", len(d.Inputs()), len(d.Outputs()))
	}
}

func TestElabUndeclaredClk(t *testing.T) {
	// The paper's canonical example (Fig. 5): posedge clk with no clk port.
	diags := wantCategory(t, `
module top_module (
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1) begin
			out[i] <= in[99 - i];
		end
	end
endmodule`, diag.CatUndeclaredIdent)
	found := false
	for _, d := range diags {
		if d.Symbol == "clk" {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostic should name 'clk': %s", diags.Summary())
	}
}

func TestElabIndexOutOfRange(t *testing.T) {
	// The paper's Fig. 2a example: out[8] on a [7:0] vector.
	diags := wantCategory(t, `
module top_module (input [7:0] in, output [7:0] out);
	assign {out[0],out[1],out[2],out[3],out[4],out[5],out[6],out[8]} = in;
endmodule`, diag.CatIndexOutOfRange)
	found := false
	for _, d := range diags {
		if d.Category == diag.CatIndexOutOfRange && d.Symbol == "out" {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostic should name 'out': %s", diags.Summary())
	}
}

func TestElabNegativeConstantIndex(t *testing.T) {
	// The paper's Fig. 6 failure case: folded index arithmetic goes
	// negative ((0-1)*16 + (0-1) = -17).
	wantCategory(t, `
module conway(input [255:0] q, output [7:0] n0);
	assign n0 = q[(0-1)*16 + (0-1)];
endmodule`, diag.CatIndexOutOfRange)
}

func TestElabInvalidLValueWireInAlways(t *testing.T) {
	wantCategory(t, `
module m(input a, output out);
	always @(*) begin
		out = a;
	end
endmodule`, diag.CatInvalidLValue)
}

func TestElabAssignToReg(t *testing.T) {
	wantCategory(t, `
module m(input a, output reg out);
	assign out = a;
endmodule`, diag.CatAssignToReg)
}

func TestElabAssignToInput(t *testing.T) {
	wantCategory(t, `
module m(input a, input b, output y);
	assign a = b;
	assign y = a;
endmodule`, diag.CatInvalidLValue)
}

func TestElabDuplicateDecl(t *testing.T) {
	wantCategory(t, `
module m(input a, output y);
	wire tmp;
	wire tmp;
	assign y = a;
endmodule`, diag.CatDuplicateDecl)
}

func TestElabPortNotDirected(t *testing.T) {
	wantCategory(t, `
module m(a, y);
	input a;
	assign y = a;
endmodule`, diag.CatPortMismatch)
}

func TestElabBodyPortNotInHeader(t *testing.T) {
	wantCategory(t, `
module m(a);
	input a;
	output y;
	assign y = a;
endmodule`, diag.CatPortMismatch)
}

func TestElabNonConstantRange(t *testing.T) {
	wantCategory(t, `
module m(input [7:0] n, output y);
	wire [n:0] bus;
	assign y = 0;
endmodule`, diag.CatNonConstantExpr)
}

func TestElabReversedPartSelect(t *testing.T) {
	wantCategory(t, `
module m(input [7:0] in, output [3:0] y);
	assign y = in[0:3];
endmodule`, diag.CatIndexOutOfRange)
}

func TestElabNoModule(t *testing.T) {
	file, _ := verilog.Parse("// just a comment\n")
	_, diags := Elaborate(file)
	if !diags.HasErrors() {
		t.Fatal("empty file must fail elaboration")
	}
}

func TestElabParamsFold(t *testing.T) {
	d := wantClean(t, `
module m #(parameter WIDTH = 8) (
	input [WIDTH-1:0] in,
	output [WIDTH-1:0] out
);
	localparam HALF = WIDTH / 2;
	assign out = in;
endmodule`)
	if got := d.Params["WIDTH"].Uint64(); got != 8 {
		t.Fatalf("WIDTH = %d, want 8", got)
	}
	if got := d.Params["HALF"].Uint64(); got != 4 {
		t.Fatalf("HALF = %d, want 4", got)
	}
	if w := d.Signal("in").Width(); w != 8 {
		t.Fatalf("in width = %d, want 8", w)
	}
}

func TestElabParamUsedAsIndexBound(t *testing.T) {
	wantClean(t, `
module m #(parameter N = 4) (input [N-1:0] in, output out);
	assign out = in[N-1];
endmodule`)
}

func TestElabParamIndexOutOfRange(t *testing.T) {
	wantCategory(t, `
module m #(parameter N = 4) (input [N-1:0] in, output out);
	assign out = in[N];
endmodule`, diag.CatIndexOutOfRange)
}

func TestElabLoopVarScoped(t *testing.T) {
	// Loop variables declared inline must be visible in the body and the
	// step, and must not leak.
	wantClean(t, `
module m(input [7:0] in, output reg [7:0] out);
	always @(*) begin
		for (int i = 0; i < 8; i = i + 1)
			out[i] = in[7 - i];
	end
endmodule`)
}

func TestElabBlockLocalInteger(t *testing.T) {
	wantClean(t, `
module m(input [7:0] in, output reg [3:0] cnt);
	integer i;
	always @(*) begin
		cnt = 0;
		for (i = 0; i < 8; i = i + 1)
			cnt = cnt + in[i];
	end
endmodule`)
}

func TestElabOutputRegNonBlocking(t *testing.T) {
	wantClean(t, `
module m(input clk, input d, output reg q);
	always @(posedge clk)
		q <= d;
endmodule`)
}

func TestElabWidthMismatchWarning(t *testing.T) {
	_, diags := elab(t, `
module m(input [3:0] a, output [7:0] y);
	assign y = a;
endmodule`)
	if diags.HasErrors() {
		t.Fatalf("width mismatch must be a warning: %s", diags.Summary())
	}
	found := false
	for _, d := range diags.Warnings() {
		if d.Category == diag.CatWidthMismatch {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected width-mismatch warning: %s", diags.Summary())
	}
}

func TestElabDynamicIndexAllowed(t *testing.T) {
	wantClean(t, `
module m(input [7:0] in, input [2:0] sel, output out);
	assign out = in[sel];
endmodule`)
}

func TestElabNonAnsiComplete(t *testing.T) {
	wantClean(t, `
module m(a, b, y);
	input a, b;
	output y;
	assign y = a ^ b;
endmodule`)
}

func TestElabAnsiOutputThenRegBody(t *testing.T) {
	// 'output [7:0] out' in the header completed by 'reg [7:0] out' in
	// the body is accepted (relaxed merge).
	wantClean(t, `
module m(input clk, output [7:0] out);
	reg [7:0] out;
	always @(posedge clk) out <= out + 1;
endmodule`)
}

func TestElabConcatLHSChecksEachPart(t *testing.T) {
	wantCategory(t, `
module m(input [8:0] x, output [7:0] sum, output reg co);
	assign {co, sum} = x;
endmodule`, diag.CatAssignToReg)
}

func TestElabMultipleModulesRejected(t *testing.T) {
	file, pd := verilog.Parse("module a; endmodule\nmodule b; endmodule")
	if pd.HasErrors() {
		t.Fatal(pd.Summary())
	}
	_, diags := Elaborate(file)
	if !diags.HasErrors() {
		t.Fatal("two modules must be an elaboration error")
	}
}

func TestElabSuggestionsPresent(t *testing.T) {
	_, diags := elab(t, `
module m(input a, output out);
	always @(*) out = a;
endmodule`)
	first, ok := diags.First()
	if !ok {
		t.Fatal("expected an error")
	}
	if first.Suggestion == "" {
		t.Fatal("sema errors should carry fix suggestions for the Quartus persona")
	}
}

func TestElabMultipleContinuousDrivers(t *testing.T) {
	_, diags := elab(t, `
module m(input a, input b, output y);
	assign y = a;
	assign y = b;
endmodule`)
	if diags.HasErrors() {
		t.Fatalf("multiple drivers must stay warning-level: %s", diags.Summary())
	}
	found := false
	for _, d := range diags.Warnings() {
		if d.Category == diag.CatMultipleDrivers && d.Symbol == "y" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected multiple-drivers warning: %s", diags.Summary())
	}
}

func TestElabAssignPlusAlwaysDriver(t *testing.T) {
	_, diags := elab(t, `
module m(input clk, input a, output reg y);
	always @(posedge clk) y <= a;
endmodule`)
	for _, d := range diags.Warnings() {
		if d.Category == diag.CatMultipleDrivers {
			t.Fatalf("single always driver must not warn: %s", diags.Summary())
		}
	}
	_, diags2 := elab(t, `
module m2(input clk, input a, output reg y);
	assign y = a;
	always @(posedge clk) y <= a;
endmodule`)
	found := false
	for _, d := range diags2 {
		if d.Category == diag.CatMultipleDrivers {
			found = true
		}
	}
	if !found {
		t.Fatalf("assign+always on one signal must warn: %s", diags2.Summary())
	}
}

func TestElabTwoAlwaysBlocksSameTarget(t *testing.T) {
	_, diags := elab(t, `
module m(input clk, input a, input b, output reg y);
	always @(posedge clk) y <= a;
	always @(posedge clk) y <= b;
endmodule`)
	found := false
	for _, d := range diags.Warnings() {
		if d.Category == diag.CatMultipleDrivers {
			found = true
		}
	}
	if !found {
		t.Fatalf("two always drivers must warn: %s", diags.Summary())
	}
}

func TestElabDisjointPartSelectAssignsStillWarn(t *testing.T) {
	// Two continuous assigns to disjoint slices of one net: flagged (a
	// deliberate simplification both reference personas share).
	_, diags := elab(t, `
module m(input [3:0] a, input [3:0] b, output [7:0] y);
	assign y[3:0] = a;
	assign y[7:4] = b;
endmodule`)
	if diags.HasErrors() {
		t.Fatalf("must not be an error: %s", diags.Summary())
	}
}

func TestElabConstantFolding(t *testing.T) {
	// Exercise the constant folder across operators via localparams.
	d := wantClean(t, `
module m #(parameter A = 12, parameter B = 5) (input x, output y);
	localparam SUM = A + B;
	localparam DIFF = A - B;
	localparam PROD = A * B;
	localparam QUOT = A / B;
	localparam REM = A % B;
	localparam AND_ = A & B;
	localparam OR_ = A | B;
	localparam XOR_ = A ^ B;
	localparam SHL = A << 2;
	localparam SHR = A >> 2;
	localparam EQ = A == B;
	localparam NE = A != B;
	localparam LT = A < B;
	localparam GE = A >= B;
	localparam LAND = A && B;
	localparam TERN = A > B ? A : B;
	localparam NEG = -B;
	localparam NOTB = !B;
	localparam CLOG = $clog2(A);
	assign y = x;
endmodule`)
	checks := map[string]uint64{
		"SUM": 17, "DIFF": 7, "PROD": 60, "QUOT": 2, "REM": 2,
		"AND_": 4, "OR_": 13, "XOR_": 9, "SHL": 48, "SHR": 3,
		"EQ": 0, "NE": 1, "LT": 0, "GE": 1, "LAND": 1, "TERN": 12,
		"NOTB": 0, "CLOG": 4,
	}
	for name, want := range checks {
		v, ok := d.Params[name]
		if !ok {
			t.Errorf("param %s missing", name)
			continue
		}
		if v.Uint64() != want {
			t.Errorf("%s = %d, want %d", name, v.Uint64(), want)
		}
	}
}

func TestElabDivisionByZeroParamNotConstant(t *testing.T) {
	wantCategory(t, `
module m #(parameter Z = 0) (input x, output y);
	localparam BAD = 4 / Z;
	assign y = x;
endmodule`, diag.CatNonConstantExpr)
}

func TestElabIndexedPartSelectWidthChecks(t *testing.T) {
	// Width larger than the vector is an error; a constant, in-range
	// width is clean.
	wantCategory(t, `
module m(input [7:0] in, input [2:0] b, output [15:0] y);
	assign y = in[b +: 16];
endmodule`, diag.CatIndexOutOfRange)
	wantClean(t, `
module m2(input [15:0] in, input [3:0] b, output [3:0] y);
	assign y = in[b -: 4];
endmodule`)
}

func TestElabNonConstantPartSelectBounds(t *testing.T) {
	wantCategory(t, `
module m(input [7:0] in, input [2:0] b, output [3:0] y);
	assign y = in[b:0];
endmodule`, diag.CatNonConstantExpr)
}

func TestElabSignalQueries(t *testing.T) {
	d := wantClean(t, `
module m(input clk, input [7:0] d, output reg [7:0] q);
	wire [3:0] t1;
	integer i;
	always @(posedge clk) q <= d;
endmodule`)
	if !d.Signal("q").IsVariable() || d.Signal("t1").IsVariable() {
		t.Error("IsVariable wrong")
	}
	if !d.Signal("i").IsVariable() {
		t.Error("integer must be a variable")
	}
	if d.Signal("t1").Width() != 4 {
		t.Error("width wrong")
	}
	if !d.Signal("d").InRange(7) || d.Signal("d").InRange(8) {
		t.Error("InRange wrong")
	}
}

func TestElabParamWithoutValue(t *testing.T) {
	file, pd := verilog.Parse(`
module m #(parameter N) (input x, output y);
	assign y = x;
endmodule`)
	_ = pd // the parser flags the missing '='; sema must not panic either way
	_, diags := Elaborate(file)
	_ = diags
}
