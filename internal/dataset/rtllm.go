package dataset

import (
	"repro/internal/bitvec"
)

// rtllmCircuits defines the RTLLM-style suite: larger multi-feature
// designs in the spirit of the RTLLM benchmark's accu / adder_16bit /
// counter_12 / freq_div / signal_generator / traffic_light / alu set.
// Memory-array designs (RAM/ROM/FIFO) are out of the supported subset and
// are substituted by register-based designs of comparable size, as
// DESIGN.md records.
var rtllmCircuits []circuit

func addRTLLM(c circuit) { rtllmCircuits = append(rtllmCircuits, c) }

func init() {
	addRTLLM(circuit{
		baseID:     "accu",
		difficulty: Hard,
		machineDesc: "Accumulate the 8-bit input data on each valid_in pulse; after every 4th accumulation output the 10-bit sum on data_out " +
			"and pulse valid_out, then restart from zero. Synchronous reset.",
		humanDesc: "Build an accumulator that sums four valid 8-bit inputs and emits the total with a valid pulse.",
		clock:     "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	input valid_in,
	input [7:0] data,
	output reg [9:0] data_out,
	output reg valid_out
);
	reg [9:0] sum;
	reg [1:0] cnt;
	always @(posedge clk) begin
		if (rst) begin
			sum <= 0;
			cnt <= 0;
			valid_out <= 0;
			data_out <= 0;
		end else begin
			valid_out <= 0;
			if (valid_in) begin
				if (cnt == 3) begin
					data_out <= sum + data;
					valid_out <= 1;
					sum <= 0;
					cnt <= 0;
				end else begin
					sum <= sum + data;
					cnt <= cnt + 1;
				end
			end
		end
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var sum, cnt, dataOut, validOut uint64
			reset := func() { sum, cnt, dataOut, validOut = 0, 0, 0, 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					sum, cnt, dataOut, validOut = 0, 0, 0, 0
				} else {
					validOut = 0
					if u64(in, "valid_in") == 1 {
						d := u64(in, "data") & 0xFF
						if cnt == 3 {
							dataOut = (sum + d) & 0x3FF
							validOut = 1
							sum, cnt = 0, 0
						} else {
							sum = (sum + d) & 0x3FF
							cnt++
						}
					}
				}
				return map[string]bitvec.Vec{
					"data_out":  bitvec.FromUint64(10, dataOut),
					"valid_out": bitvec.FromUint64(1, validOut),
				}
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:      "adder_16bit",
		difficulty:  Easy,
		machineDesc: "A 16-bit adder: sum the inputs a and b with carry-in Cin, producing the 16-bit result y and the carry-out Co via {Co, y}.",
		humanDesc:   "Implement a 16-bit full adder with carry in and carry out.",
		src: stdHeader + ` (
	input [15:0] a,
	input [15:0] b,
	input Cin,
	output [15:0] y,
	output Co
);
	assign {Co, y} = a + b + Cin;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			t := u64(in, "a") + u64(in, "b") + u64(in, "Cin")
			return map[string]bitvec.Vec{
				"y":  bitvec.FromUint64(16, t&0xFFFF),
				"Co": bitvec.FromUint64(1, (t>>16)&1),
			}
		}),
	})

	addRTLLM(circuit{
		baseID:      "multi_16bit",
		difficulty:  Hard,
		machineDesc: "Multiply the 16-bit unsigned inputs ain and bin into the 32-bit product yout; assert done combinationally when en is high.",
		humanDesc:   "Build a 16-by-16 unsigned multiplier gated by an enable.",
		src: stdHeader + ` (
	input en,
	input [15:0] ain,
	input [15:0] bin,
	output [31:0] yout,
	output done
);
	assign yout = en ? ain * bin : 32'b0;
	assign done = en;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			var y uint64
			if u64(in, "en") == 1 {
				y = (u64(in, "ain") & 0xFFFF) * (u64(in, "bin") & 0xFFFF)
			}
			return map[string]bitvec.Vec{
				"yout": bitvec.FromUint64(32, y),
				"done": bitvec.FromUint64(1, u64(in, "en")&1),
			}
		}),
	})

	addRTLLM(circuit{
		baseID:      "jc_counter",
		difficulty:  Hard,
		machineDesc: "A 64-bit Johnson counter: on each clock shift right by one and feed the inverted LSB into the MSB: q <= {~q[0], q[63:1]}. Synchronous reset clears q.",
		humanDesc:   "Implement a 64-bit Johnson (twisted ring) counter.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	output reg [63:0] q
);
	always @(posedge clk) begin
		if (rst)
			q <= 0;
		else
			q <= {~q[0], q[63:1]};
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var q uint64
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					q = 0
				} else {
					q = ((^q & 1) << 63) | (q >> 1)
				}
				return out1("q", 64, q)
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:      "right_shifter",
		difficulty:  Easy,
		machineDesc: "An 8-bit right shifter: each clock, shift q right by one and insert the serial input d into bit 7.",
		humanDesc:   "Build an 8-bit shift register that shifts right, taking new data into the top bit.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input d,
	output reg [7:0] q
);
	always @(posedge clk)
		q <= {d, q[7:1]};
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var q uint64
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				q = ((u64(in, "d") & 1) << 7) | (q >> 1)
				return out1("q", 8, q)
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:      "counter_12",
		difficulty:  Hard,
		machineDesc: "A modulo-12 counter with enable: when valid_count is high count 0 to 11 and wrap; hold otherwise. Synchronous reset clears it.",
		humanDesc:   "Build a counter that cycles through 0-11 while enabled.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	input valid_count,
	output reg [3:0] out
);
	always @(posedge clk) begin
		if (rst)
			out <= 0;
		else if (valid_count) begin
			if (out == 11)
				out <= 0;
			else
				out <= out + 1;
		end
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var q uint64
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					q = 0
				} else if u64(in, "valid_count") == 1 {
					if q == 11 {
						q = 0
					} else {
						q++
					}
				}
				return out1("out", 4, q)
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:     "freq_div",
		difficulty: Hard,
		machineDesc: "Generate three divided clocks from counters: clk_div2 toggles every cycle, clk_div4 toggles every 2nd cycle, clk_div8 toggles " +
			"every 4th cycle (use a 3-bit counter). Synchronous reset clears everything.",
		humanDesc: "Produce divide-by-2, divide-by-4, and divide-by-8 versions of the input clock.",
		clock:     "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	output clk_div2,
	output clk_div4,
	output clk_div8
);
	reg [2:0] cnt;
	always @(posedge clk) begin
		if (rst)
			cnt <= 0;
		else
			cnt <= cnt + 1;
	end
	assign clk_div2 = cnt[0];
	assign clk_div4 = cnt[1];
	assign clk_div8 = cnt[2];
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var cnt uint64
			reset := func() { cnt = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					cnt = 0
				} else {
					cnt = (cnt + 1) & 7
				}
				return map[string]bitvec.Vec{
					"clk_div2": bitvec.FromUint64(1, cnt&1),
					"clk_div4": bitvec.FromUint64(1, (cnt>>1)&1),
					"clk_div8": bitvec.FromUint64(1, (cnt>>2)&1),
				}
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:     "signal_generator",
		difficulty: Hard,
		machineDesc: "A triangle-wave generator: a 5-bit value counts up to 31 then down to 0, repeating, with a direction register; " +
			"synchronous reset clears value and direction.",
		humanDesc: "Generate a triangle waveform that ramps up to 31 and back down to 0 forever.",
		clock:     "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	output reg [4:0] wave
);
	reg dir;
	always @(posedge clk) begin
		if (rst) begin
			wave <= 0;
			dir <= 0;
		end else begin
			if (dir == 0) begin
				if (wave == 31) begin
					dir <= 1;
					wave <= wave - 1;
				end else
					wave <= wave + 1;
			end else begin
				if (wave == 0) begin
					dir <= 0;
					wave <= wave + 1;
				end else
					wave <= wave - 1;
			end
		end
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var wave, dir uint64
			reset := func() { wave, dir = 0, 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					wave, dir = 0, 0
				} else if dir == 0 {
					if wave == 31 {
						dir = 1
						wave--
					} else {
						wave++
					}
				} else {
					if wave == 0 {
						dir = 0
						wave++
					} else {
						wave--
					}
				}
				return out1("wave", 5, wave)
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:      "parallel2serial",
		difficulty:  Hard,
		machineDesc: "Load the 4-bit input when cnt is 0, then shift out MSB-first one bit per clock on dout with valid_out high; a 2-bit counter sequences the four bits.",
		humanDesc:   "Convert 4-bit parallel words into a continuous MSB-first serial stream.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	input [3:0] d,
	output valid_out,
	output dout
);
	reg [3:0] data;
	reg [1:0] cnt;
	always @(posedge clk) begin
		if (rst) begin
			data <= 0;
			cnt <= 0;
		end else begin
			if (cnt == 0)
				data <= d;
			else
				data <= {data[2:0], 1'b0};
			cnt <= cnt + 1;
		end
	end
	assign dout = data[3];
	assign valid_out = 1;
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var data, cnt uint64
			reset := func() { data, cnt = 0, 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					data, cnt = 0, 0
				} else {
					if cnt == 0 {
						data = u64(in, "d") & 0xF
					} else {
						data = (data << 1) & 0xF
					}
					cnt = (cnt + 1) & 3
				}
				return map[string]bitvec.Vec{
					"dout":      bitvec.FromUint64(1, (data>>3)&1),
					"valid_out": bitvec.FromUint64(1, 1),
				}
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:      "pulse_detect",
		difficulty:  Hard,
		machineDesc: "Detect a 0-1-0 pulse on data_in: track the previous two samples in registers and assert data_out for the cycle where the pattern completes. Synchronous reset.",
		humanDesc:   "Detect single-cycle pulses in a serial input: output a pulse when the input goes low after exactly one high cycle.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	input data_in,
	output reg data_out
);
	reg p1;
	reg p2;
	always @(posedge clk) begin
		if (rst) begin
			p1 <= 0;
			p2 <= 0;
			data_out <= 0;
		end else begin
			data_out <= p2 == 0 && p1 == 1 && data_in == 0;
			p2 <= p1;
			p1 <= data_in;
		end
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var p1, p2, out uint64
			reset := func() { p1, p2, out = 0, 0, 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					p1, p2, out = 0, 0, 0
				} else {
					d := u64(in, "data_in") & 1
					if p2 == 0 && p1 == 1 && d == 0 {
						out = 1
					} else {
						out = 0
					}
					p2 = p1
					p1 = d
				}
				return out1("data_out", 1, out)
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:      "width_8to16",
		difficulty:  Hard,
		machineDesc: "Pair consecutive valid 8-bit inputs into one 16-bit output (first input in the high byte); pulse valid_out when the pair completes. Track a half-full flag. Synchronous reset.",
		humanDesc:   "Widen a byte stream to 16-bit words: every two valid bytes form one word, first byte high.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	input valid_in,
	input [7:0] data_in,
	output reg valid_out,
	output reg [15:0] data_out
);
	reg [7:0] hold;
	reg half;
	always @(posedge clk) begin
		if (rst) begin
			hold <= 0;
			half <= 0;
			valid_out <= 0;
			data_out <= 0;
		end else begin
			valid_out <= 0;
			if (valid_in) begin
				if (half) begin
					data_out <= {hold, data_in};
					valid_out <= 1;
					half <= 0;
				end else begin
					hold <= data_in;
					half <= 1;
				end
			end
		end
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var hold, half, validOut, dataOut uint64
			reset := func() { hold, half, validOut, dataOut = 0, 0, 0, 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					hold, half, validOut, dataOut = 0, 0, 0, 0
				} else {
					validOut = 0
					if u64(in, "valid_in") == 1 {
						d := u64(in, "data_in") & 0xFF
						if half == 1 {
							dataOut = hold<<8 | d
							validOut = 1
							half = 0
						} else {
							hold = d
							half = 1
						}
					}
				}
				return map[string]bitvec.Vec{
					"valid_out": bitvec.FromUint64(1, validOut),
					"data_out":  bitvec.FromUint64(16, dataOut),
				}
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:     "traffic_light",
		difficulty: Hard,
		machineDesc: "A traffic light FSM: green for 8 cycles, yellow for 2, red for 6, repeating; a 4-bit timer counts down and the 2-bit state " +
			"advances when it hits zero. Outputs one-hot {red, yellow, green}. Synchronous reset to green with timer 7.",
		humanDesc: "Control a traffic light cycling green (8 cycles), yellow (2), red (6).",
		clock:     "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	output red,
	output yellow,
	output green
);
	reg [1:0] state;
	reg [3:0] timer;
	always @(posedge clk) begin
		if (rst) begin
			state <= 0;
			timer <= 7;
		end else if (timer == 0) begin
			case (state)
				2'd0: begin state <= 2'd1; timer <= 1; end
				2'd1: begin state <= 2'd2; timer <= 5; end
				default: begin state <= 2'd0; timer <= 7; end
			endcase
		end else
			timer <= timer - 1;
	end
	assign green = state == 2'd0;
	assign yellow = state == 2'd1;
	assign red = state == 2'd2;
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			state, timer := uint64(0), uint64(7)
			reset := func() { state, timer = 0, 7 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					state, timer = 0, 7
				} else if timer == 0 {
					switch state {
					case 0:
						state, timer = 1, 1
					case 1:
						state, timer = 2, 5
					default:
						state, timer = 0, 7
					}
				} else {
					timer--
				}
				bl := func(c bool) uint64 {
					if c {
						return 1
					}
					return 0
				}
				return map[string]bitvec.Vec{
					"green":  bitvec.FromUint64(1, bl(state == 0)),
					"yellow": bitvec.FromUint64(1, bl(state == 1)),
					"red":    bitvec.FromUint64(1, bl(state == 2)),
				}
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:     "alu",
		difficulty: Hard,
		machineDesc: "An 8-bit ALU over the 3-bit opcode: 0 add, 1 subtract, 2 and, 3 or, 4 xor, 5 shift-left-1, 6 shift-right-1, 7 pass a. " +
			"zero is high when the result is 0.",
		humanDesc: "Implement an 8-operation byte ALU with a zero flag.",
		src: stdHeader + ` (
	input [7:0] a,
	input [7:0] b,
	input [2:0] op,
	output reg [7:0] r,
	output zero
);
	always @(*) begin
		case (op)
			3'd0: r = a + b;
			3'd1: r = a - b;
			3'd2: r = a & b;
			3'd3: r = a | b;
			3'd4: r = a ^ b;
			3'd5: r = a << 1;
			3'd6: r = a >> 1;
			default: r = a;
		endcase
	end
	assign zero = r == 0;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			a, b := u64(in, "a")&0xFF, u64(in, "b")&0xFF
			var r uint64
			switch u64(in, "op") & 7 {
			case 0:
				r = a + b
			case 1:
				r = a - b
			case 2:
				r = a & b
			case 3:
				r = a | b
			case 4:
				r = a ^ b
			case 5:
				r = a << 1
			case 6:
				r = a >> 1
			default:
				r = a
			}
			r &= 0xFF
			z := uint64(0)
			if r == 0 {
				z = 1
			}
			return map[string]bitvec.Vec{
				"r":    bitvec.FromUint64(8, r),
				"zero": bitvec.FromUint64(1, z),
			}
		}),
	})

	addRTLLM(circuit{
		baseID:      "synchronizer",
		difficulty:  Hard,
		machineDesc: "A two-stage synchronizer: register data_in through two flip-flops in series; dout is the second stage.",
		humanDesc:   "Pass an asynchronous input through a standard two-flop synchronizer.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input data_in,
	output dout
);
	reg s1;
	reg s2;
	always @(posedge clk) begin
		s1 <= data_in;
		s2 <= s1;
	end
	assign dout = s2;
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var s1, s2 uint64
			reset := func() { s1, s2 = 0, 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				s2 = s1
				s1 = u64(in, "data_in") & 1
				return out1("dout", 1, s2)
			}
			return reset, step
		}),
	})

	addRTLLM(circuit{
		baseID:      "fsm_quad_seq",
		difficulty:  Hard,
		machineDesc: "A 4-state FSM advancing on in=1 and restarting on in=0 unless in state 3 which holds; match is high in state 3. Synchronous reset to state 0.",
		humanDesc:   "Recognize four consecutive 1s on the input and hold the match flag until reset by a 0.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input rst,
	input in,
	output match
);
	reg [1:0] state;
	always @(posedge clk) begin
		if (rst)
			state <= 0;
		else if (in) begin
			if (state != 3)
				state <= state + 1;
		end else
			state <= 0;
	end
	assign match = state == 3;
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var state uint64
			reset := func() { state = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "rst") == 1 {
					state = 0
				} else if u64(in, "in") == 1 {
					if state != 3 {
						state++
					}
				} else {
					state = 0
				}
				m := uint64(0)
				if state == 3 {
					m = 1
				}
				return out1("match", 1, m)
			}
			return reset, step
		}),
	})
}
