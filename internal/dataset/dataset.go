// Package dataset holds the benchmark problem corpora standing in for
// VerilogEval-Machine, VerilogEval-Human, and RTLLM. Each problem pairs a
// natural-language description (machine-style low-level or human-style
// high-level, matching the two VerilogEval tracks), a reference Verilog
// implementation, and a cycle-accurate Go golden model used by the
// simulator-based pass@k oracle.
//
// The suite sizes mirror the paper: Human has 156 problems split 71 easy /
// 85 hard (the paper's split at pass-rate 0.1), Machine has 143, and the
// RTLLM-style suite holds larger multi-feature designs.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/memo"
	"repro/internal/sim"
	"repro/internal/store"
)

// oracle is the package-wide content-addressed cache over the functional
// oracle's compile pipeline (parse + elaborate + engine compile). Every
// consumer of Problem.Check — the bench tables, the examples, rtlfixerd's
// fix loop — funnels through here, so repeated candidates and the
// per-Check reference recompilation are served from cache. The cache is
// transparent: results are byte-identical with or without it.
var oracle = memo.NewSimCache(0)

// AttachStore hooks a durable backing (internal/store) under the oracle
// cache: every distinct source it compiles is recorded write-behind, and
// with warm true, previously recorded sources are recompiled now — the
// warm start that moves the oracle's compile cost to boot time. Call
// before issuing Checks (cmd/benchmark does, from -state-dir). Returns
// the number of sources replayed.
func AttachStore(b store.Backing, warm bool) int {
	return oracle.AttachStore(b, warm)
}

// OracleCacheStats snapshots the package oracle's memoization counters.
func OracleCacheStats() memo.Stats { return oracle.Stats() }

// Suite identifies a benchmark track.
type Suite string

// Benchmark suites.
const (
	SuiteMachine Suite = "machine"
	SuiteHuman   Suite = "human"
	SuiteRTLLM   Suite = "rtllm"
)

// Difficulty is the paper's easy/hard split.
type Difficulty string

// Difficulty levels.
const (
	Easy Difficulty = "easy"
	Hard Difficulty = "hard"
)

// Problem is one benchmark entry.
type Problem struct {
	// ID is unique within a suite (e.g. "vector_reverse_w100").
	ID string
	// Suite is the track the problem belongs to.
	Suite Suite
	// Difficulty is the easy/hard tag driving the generator's pass rates.
	Difficulty Difficulty
	// Description is the prompt text, styled per suite.
	Description string
	// RefSource is the known-good Verilog implementation.
	RefSource string
	// Clock names the clock input, or "" for combinational problems.
	Clock string
	// NewGolden builds a fresh golden model instance.
	NewGolden func() sim.Golden
	// Cycles is the number of testbench vectors to run (0 = 64).
	Cycles int
}

// Vectors generates the problem's stimulus: random values on every
// non-clock input, with reset-style inputs held high for the first two
// cycles so golden model and DUT leave reset together.
func (p *Problem) Vectors(rng *rand.Rand) ([]sim.Vector, error) {
	_, design, diags := oracle.Frontend(p.RefSource)
	if design == nil {
		return nil, fmt.Errorf("problem %s: reference does not compile: %s", p.ID, diags.Summary())
	}
	n := p.Cycles
	if n == 0 {
		n = 64
	}
	inputs := design.Inputs()
	var vectors []sim.Vector
	for c := 0; c < n; c++ {
		v := sim.Vector{Inputs: map[string]bitvec.Vec{}}
		for _, in := range inputs {
			if in.Name == p.Clock {
				continue
			}
			if isResetName(in.Name) {
				if c < 2 {
					v.Inputs[in.Name] = bitvec.FromUint64(in.Width(), 1)
				} else {
					// occasional mid-run reset pulses exercise the reset
					// path beyond the preamble
					val := uint64(0)
					if rng.Intn(16) == 0 {
						val = 1
					}
					v.Inputs[in.Name] = bitvec.FromUint64(in.Width(), val)
				}
				continue
			}
			v.Inputs[in.Name] = randomVec(rng, in.Width())
		}
		vectors = append(vectors, v)
	}
	return vectors, nil
}

func isResetName(name string) bool {
	switch name {
	case "rst", "reset", "areset", "rst_n", "resetn":
		return true
	}
	return false
}

func randomVec(rng *rand.Rand, width int) bitvec.Vec {
	v := bitvec.New(width)
	for i := 0; i < width; i += 64 {
		chunk := rng.Uint64()
		for b := 0; b < 64 && i+b < width; b++ {
			if chunk>>b&1 == 1 {
				v = v.SetBit(i+b, true)
			}
		}
	}
	return v
}

// Check runs the problem's testbench against a candidate design. The
// candidate must already be elaborated (compile first). Compilation —
// frontend and engine lowering — is amortized through the package cache,
// so rechecking a seen candidate costs only the simulation itself.
func (p *Problem) Check(candidate string, rng *rand.Rand) (sim.TBResult, error) {
	return p.CheckObserved(candidate, rng, sim.TBObserve{})
}

// CheckObserved is Check with simulation-layer observability attached
// for the run: a waveform recorder (marked at the first mismatch),
// toggle/activity coverage, or an engine execution profile. A zero
// TBObserve makes it identical to Check.
func (p *Problem) CheckObserved(candidate string, rng *rand.Rand, obs sim.TBObserve) (sim.TBResult, error) {
	prog, design, diags := oracle.Program(candidate)
	if design == nil {
		return sim.TBResult{}, fmt.Errorf("candidate does not compile: %s", diags.Summary())
	}
	vectors, err := p.Vectors(rng)
	if err != nil {
		return sim.TBResult{}, err
	}
	var s *sim.Simulator
	if prog != nil {
		s = sim.NewFromProgram(prog)
	} else {
		// construct outside the compiled engine's coverage: the cache
		// already recorded the rejection, so go straight to the walker
		// rather than re-attempting compilation through EngineAuto
		s, err = sim.NewWith(design, sim.EngineWalker)
		if err != nil {
			return sim.TBResult{}, err
		}
	}
	return sim.RunTestbenchObserved(s, p.Clock, vectors, p.NewGolden(), obs)
}

// ---------- suite access ----------

var registry = map[Suite][]*Problem{}

func register(p *Problem) {
	registry[p.Suite] = append(registry[p.Suite], p)
}

// Problems returns the suite's problems in stable ID order.
func Problems(s Suite) []*Problem {
	out := append([]*Problem(nil), registry[s]...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds a problem in a suite.
func ByID(s Suite, id string) (*Problem, bool) {
	for _, p := range registry[s] {
		if p.ID == id {
			return p, true
		}
	}
	return nil, false
}

// Stats summarizes a suite.
type Stats struct {
	Total, Easy, Hard int
}

// SuiteStats counts a suite's problems by difficulty.
func SuiteStats(s Suite) Stats {
	var st Stats
	for _, p := range registry[s] {
		st.Total++
		if p.Difficulty == Easy {
			st.Easy++
		} else {
			st.Hard++
		}
	}
	return st
}

// ---------- golden model helpers ----------

// combGolden wraps a pure function of the inputs.
func combGolden(f func(in map[string]bitvec.Vec) map[string]bitvec.Vec) func() sim.Golden {
	return func() sim.Golden { return sim.GoldenFunc(f) }
}

// u64 reads an input as uint64 (zero when missing).
func u64(in map[string]bitvec.Vec, name string) uint64 {
	if v, ok := in[name]; ok {
		return v.Uint64()
	}
	return 0
}

// vec reads an input as a bitvec (empty when missing).
func vec(in map[string]bitvec.Vec, name string) bitvec.Vec {
	if v, ok := in[name]; ok {
		return v
	}
	return bitvec.New(1)
}

// out1 builds a single-output result.
func out1(name string, width int, val uint64) map[string]bitvec.Vec {
	return map[string]bitvec.Vec{name: bitvec.FromUint64(width, val)}
}

func mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}
