package dataset

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/sim"
)

// statefulGolden adapts reset/step closures to sim.Golden.
type statefulGolden struct {
	reset func()
	step  func(in map[string]bitvec.Vec) map[string]bitvec.Vec
}

// Reset implements sim.Golden.
func (g *statefulGolden) Reset() { g.reset() }

// Step implements sim.Golden.
func (g *statefulGolden) Step(in map[string]bitvec.Vec) map[string]bitvec.Vec { return g.step(in) }

// seqGolden builds a fresh-state golden factory from a constructor that
// returns (reset, step) closures over shared state.
func seqGolden(build func() (func(), func(in map[string]bitvec.Vec) map[string]bitvec.Vec)) func() sim.Golden {
	return func() sim.Golden {
		reset, step := build()
		g := &statefulGolden{reset: reset, step: step}
		g.reset()
		return g
	}
}

// ---------- D flip-flops ----------

func init() {
	for _, w := range []int{1, 8, 16, 32, 64} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("dff_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"On every positive clock edge, register the %d-bit input d into the output q.", w),
			humanDesc: fmt.Sprintf(
				"Create a %d-bit D flip-flop clocked on the rising edge of clk.", w),
			clock: "clk",
			src: fmt.Sprintf(`%s (
	input clk,
	input [%d:0] d,
	output reg [%d:0] q
);
	always @(posedge clk)
		q <= d;
endmodule
`, stdHeader, w-1, w-1),
			golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
				var q bitvec.Vec
				reset := func() { q = bitvec.New(w) }
				step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
					q = vec(in, "d").Resize(w)
					return map[string]bitvec.Vec{"q": q}
				}
				return reset, step
			}),
		})
	}
	for _, w := range []int{1, 8, 16} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("dff_en_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"On the positive clock edge, load the %d-bit d into q only when ena is high; otherwise hold q.", w),
			humanDesc: fmt.Sprintf(
				"Build a %d-bit register with a clock-enable input.", w),
			clock: "clk",
			src: fmt.Sprintf(`%s (
	input clk,
	input ena,
	input [%d:0] d,
	output reg [%d:0] q
);
	always @(posedge clk)
		if (ena)
			q <= d;
endmodule
`, stdHeader, w-1, w-1),
			golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
				var q bitvec.Vec
				reset := func() { q = bitvec.New(w) }
				step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
					if u64(in, "ena") == 1 {
						q = vec(in, "d").Resize(w)
					}
					return map[string]bitvec.Vec{"q": q}
				}
				return reset, step
			}),
		})
	}
	addCircuit(circuit{
		baseID:      "dff_areset_w8",
		difficulty:  Easy,
		machineDesc: "Register d into q on the positive clock edge; clear q to 0 asynchronously whenever areset is high.",
		humanDesc:   "Build an 8-bit register with an active-high asynchronous reset.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input areset,
	input [7:0] d,
	output reg [7:0] q
);
	always @(posedge clk or posedge areset)
		if (areset)
			q <= 0;
		else
			q <= d;
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			q := uint64(0)
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "areset") == 1 {
					q = 0
				} else {
					q = u64(in, "d") & 0xFF
				}
				return out1("q", 8, q)
			}
			return reset, step
		}),
	})
}

// ---------- counters ----------

func init() {
	for _, w := range []int{4, 6, 8, 12, 16} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("counter_up_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"On each positive clock edge set q to 0 when reset is high, otherwise increment the %d-bit q by 1.", w),
			humanDesc: fmt.Sprintf(
				"Build a %d-bit up-counter with synchronous reset.", w),
			clock: "clk",
			src: fmt.Sprintf(`%s (
	input clk,
	input reset,
	output reg [%d:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else
			q <= q + 1;
	end
endmodule
`, stdHeader, w-1),
			golden: counterGolden(w, 1, 0),
		})
	}
	addCircuit(circuit{
		baseID:      "counter_down_w8",
		difficulty:  Easy,
		machineDesc: "On each positive clock edge set q to 8'hFF when reset is high, otherwise decrement q by 1.",
		humanDesc:   "Build an 8-bit down-counter that reloads to 255 on synchronous reset.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	output reg [7:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 8'hff;
		else
			q <= q - 1;
	end
endmodule
`,
		golden: counterGolden(8, -1, 0xFF),
	})
	for _, cfg := range []struct {
		mod  int
		w    int
		diff Difficulty
	}{{7, 3, Hard}, {10, 4, Hard}, {12, 4, Hard}, {60, 6, Hard}} {
		mod, w := cfg.mod, cfg.w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("counter_mod%d", mod),
			difficulty: cfg.diff,
			machineDesc: fmt.Sprintf(
				"Count from 0 to %d and wrap to 0; reset synchronously to 0 when reset is high. q is %d bits.", mod-1, w),
			humanDesc: fmt.Sprintf(
				"Build a modulo-%d counter (0 through %d, then back to 0) with synchronous reset.", mod, mod-1),
			clock: "clk",
			src: fmt.Sprintf(`%s (
	input clk,
	input reset,
	output reg [%d:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else if (q == %d)
			q <= 0;
		else
			q <= q + 1;
	end
endmodule
`, stdHeader, w-1, mod-1),
			golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
				q := uint64(0)
				reset := func() { q = 0 }
				step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
					switch {
					case u64(in, "reset") == 1:
						q = 0
					case q == uint64(mod-1):
						q = 0
					default:
						q++
					}
					return out1("q", w, q)
				}
				return reset, step
			}),
		})
	}
	addCircuit(circuit{
		baseID:      "counter_saturating_w4",
		difficulty:  Hard,
		machineDesc: "Increment the 4-bit q on each clock edge but hold at 15 once reached; reset synchronously to 0.",
		humanDesc:   "Build a 4-bit saturating counter: it climbs to 15 and stays there until reset.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	output reg [3:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else if (q != 4'hf)
			q <= q + 1;
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			q := uint64(0)
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					q = 0
				} else if q != 15 {
					q++
				}
				return out1("q", 4, q)
			}
			return reset, step
		}),
	})
	addCircuit(circuit{
		baseID:      "gray_counter_w4",
		difficulty:  Hard,
		machineDesc: "Keep a 4-bit binary counter internally; output its Gray encoding (bin ^ bin>>1). Reset synchronously.",
		humanDesc:   "Build a 4-bit Gray-code counter whose output advances one Gray step per clock.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	output [3:0] q
);
	reg [3:0] bin;
	always @(posedge clk) begin
		if (reset)
			bin <= 0;
		else
			bin <= bin + 1;
	end
	assign q = bin ^ (bin >> 1);
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			bin := uint64(0)
			reset := func() { bin = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					bin = 0
				} else {
					bin = (bin + 1) & 0xF
				}
				return out1("q", 4, bin^(bin>>1))
			}
			return reset, step
		}),
	})
}

// counterGolden builds an up/down counter model: delta +1/-1, reload value
// on reset.
func counterGolden(w int, delta int, reload uint64) func() sim.Golden {
	return seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
		q := uint64(0)
		reset := func() { q = 0 }
		step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			if u64(in, "reset") == 1 {
				q = reload
			} else if delta > 0 {
				q = (q + 1) & mask(w)
			} else {
				q = (q - 1) & mask(w)
			}
			return out1("q", w, q)
		}
		return reset, step
	})
}

// ---------- shift registers ----------

func init() {
	for _, w := range []int{4, 8, 16} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("shift_reg_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"On each positive clock edge shift q left by one and bring the serial input sin into bit 0: q <= {q[%d:0], sin}.", w-2),
			humanDesc: fmt.Sprintf(
				"Build a %d-bit serial-in shift register (MSB-first shift-left).", w),
			clock: "clk",
			src: fmt.Sprintf(`%s (
	input clk,
	input sin,
	output reg [%d:0] q
);
	always @(posedge clk)
		q <= {q[%d:0], sin};
endmodule
`, stdHeader, w-1, w-2),
			golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
				q := uint64(0)
				reset := func() { q = 0 }
				step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
					q = ((q << 1) | u64(in, "sin")) & mask(w)
					return out1("q", w, q)
				}
				return reset, step
			}),
		})
	}
	addCircuit(circuit{
		baseID:      "ring_counter_w4",
		difficulty:  Hard,
		machineDesc: "A 4-bit one-hot ring counter: load 4'b0001 on synchronous reset, then rotate left each clock: q <= {q[2:0], q[3]}.",
		humanDesc:   "Build a 4-bit ring counter that circulates a single hot bit.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	output reg [3:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 4'b0001;
		else
			q <= {q[2:0], q[3]};
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			q := uint64(0)
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					q = 1
				} else {
					q = ((q << 1) | (q >> 3)) & 0xF
				}
				return out1("q", 4, q)
			}
			return reset, step
		}),
	})
	addCircuit(circuit{
		baseID:      "johnson_counter_w4",
		difficulty:  Hard,
		machineDesc: "A 4-bit Johnson counter: on reset clear q, otherwise q <= {q[2:0], ~q[3]}.",
		humanDesc:   "Build a 4-bit Johnson (twisted-ring) counter.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	output reg [3:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else
			q <= {q[2:0], ~q[3]};
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			q := uint64(0)
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					q = 0
				} else {
					q = ((q << 1) | ((^q >> 3) & 1)) & 0xF
				}
				return out1("q", 4, q)
			}
			return reset, step
		}),
	})
	addCircuit(circuit{
		baseID:      "lfsr_w5",
		difficulty:  Hard,
		machineDesc: "A 5-bit Galois LFSR with taps at positions 5 and 3: on reset load 5'h1; otherwise q <= {q[0], q[4], q[3]^q[0], q[2], q[1]}.",
		humanDesc:   "Implement a 5-bit linear-feedback shift register with the x^5 + x^3 + 1 polynomial, reset state 1.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	output reg [4:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 5'h1;
		else
			q <= {q[0], q[4], q[3] ^ q[0], q[2], q[1]};
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			q := uint64(1)
			reset := func() { q = 1 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					q = 1
				} else {
					b := func(i uint) uint64 { return (q >> i) & 1 }
					q = b(0)<<4 | b(4)<<3 | (b(3)^b(0))<<2 | b(2)<<1 | b(1)
				}
				return out1("q", 5, q)
			}
			return reset, step
		}),
	})
}

// ---------- edge detection / toggling ----------

func init() {
	addCircuit(circuit{
		baseID:      "edge_detect_rise",
		difficulty:  Easy,
		machineDesc: "Register the 1-bit input in each clock; output rise = ~prev & in, registered so it pulses the cycle after a 0-to-1 transition.",
		humanDesc:   "Detect rising edges of a slow input signal: pulse the output for one cycle after each 0-to-1 transition.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input in,
	output reg rise
);
	reg prev;
	always @(posedge clk) begin
		rise <= ~prev & in;
		prev <= in;
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			prev, rise := uint64(0), uint64(0)
			reset := func() { prev, rise = 0, 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				cur := u64(in, "in") & 1
				rise = ^prev & cur & 1
				prev = cur
				return out1("rise", 1, rise)
			}
			return reset, step
		}),
	})
	addCircuit(circuit{
		baseID:      "edge_detect_any",
		difficulty:  Hard,
		machineDesc: "For each bit of the 8-bit input, pulse the corresponding output bit the cycle after that bit changed in either direction (XOR of current and previous value).",
		humanDesc:   "Detect any change on each bit of an 8-bit bus, one output pulse per changed bit.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input [7:0] in,
	output reg [7:0] anyedge
);
	reg [7:0] prev;
	always @(posedge clk) begin
		anyedge <= prev ^ in;
		prev <= in;
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			prev := uint64(0)
			var edge uint64
			reset := func() { prev, edge = 0, 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				cur := u64(in, "in") & 0xFF
				edge = prev ^ cur
				prev = cur
				return out1("anyedge", 8, edge)
			}
			return reset, step
		}),
	})
	addCircuit(circuit{
		baseID:      "toggle_ff",
		difficulty:  Easy,
		machineDesc: "A T flip-flop: on each clock edge invert q when t is high, hold otherwise; synchronous reset clears q.",
		humanDesc:   "Build a toggle flip-flop with synchronous reset.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	input t,
	output reg q
);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else if (t)
			q <= ~q;
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			q := uint64(0)
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					q = 0
				} else if u64(in, "t") == 1 {
					q ^= 1
				}
				return out1("q", 1, q)
			}
			return reset, step
		}),
	})
	for _, w := range []int{8, 16, 32} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("accumulator_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"On each clock edge add the %d-bit input d into the running sum q; synchronous reset clears the sum.", w),
			humanDesc: fmt.Sprintf(
				"Build a %d-bit accumulator that sums its input every cycle.", w),
			clock: "clk",
			src: fmt.Sprintf(`%s (
	input clk,
	input reset,
	input [%d:0] d,
	output reg [%d:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else
			q <= q + d;
	end
endmodule
`, stdHeader, w-1, w-1),
			golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
				q := uint64(0)
				reset := func() { q = 0 }
				step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
					if u64(in, "reset") == 1 {
						q = 0
					} else {
						q = (q + u64(in, "d")) & mask(w)
					}
					return out1("q", w, q)
				}
				return reset, step
			}),
		})
	}
	addCircuit(circuit{
		baseID:      "freq_div2",
		difficulty:  Easy,
		machineDesc: "Toggle the output q on every positive clock edge (divide the clock by two); synchronous reset clears q.",
		humanDesc:   "Divide the input clock frequency by two using a toggling register.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	output reg q
);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else
			q <= ~q;
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			q := uint64(0)
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					q = 0
				} else {
					q ^= 1
				}
				return out1("q", 1, q)
			}
			return reset, step
		}),
	})
}

// ---------- FSMs (the hard tail of the Human suite) ----------

// seqDetector builds a Moore overlapping sequence detector for a bit
// pattern given as a string of '0'/'1'.
func seqDetector(id, pattern string) circuit {
	n := len(pattern)
	// The RTL tracks the last n input bits in a shift register and
	// compares; the golden model mirrors that directly.
	var patVal uint64
	for i := 0; i < n; i++ {
		if pattern[i] == '1' {
			patVal |= 1 << (n - 1 - i)
		}
	}
	return circuit{
		baseID:     id,
		difficulty: Hard,
		machineDesc: fmt.Sprintf(
			"Shift the serial input x into an internal %d-bit history register each clock; assert z when the history equals %s. Synchronous reset clears the history.",
			n, pattern),
		humanDesc: fmt.Sprintf(
			"Design a sequence detector that raises z for one cycle whenever the last %d serial input bits were %s (overlap allowed).",
			n, pattern),
		clock: "clk",
		src: fmt.Sprintf(`%s (
	input clk,
	input reset,
	input x,
	output z
);
	reg [%d:0] hist;
	always @(posedge clk) begin
		if (reset)
			hist <= 0;
		else
			hist <= {hist[%d:0], x};
	end
	assign z = hist == %d'b%s;
endmodule
`, stdHeader, n-1, n-2, n, pattern),
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			hist := uint64(0)
			reset := func() { hist = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					hist = 0
				} else {
					hist = ((hist << 1) | (u64(in, "x") & 1)) & mask(n)
				}
				z := uint64(0)
				if hist == patVal {
					z = 1
				}
				return out1("z", 1, z)
			}
			return reset, step
		}),
	}
}

func init() {
	addCircuit(seqDetector("seq_detect_101", "101"))
	addCircuit(seqDetector("seq_detect_110", "110"))
	addCircuit(seqDetector("seq_detect_1011", "1011"))

	addCircuit(circuit{
		baseID:     "fsm_one_input",
		difficulty: Hard,
		machineDesc: "A 3-state Moore machine over states 0,1,2: from 0 go to 1 on in, else stay; from 1 go to 2 on ~in, else stay; " +
			"from 2 go to 1 on in else 0. Output out is high in state 2. Synchronous reset to state 0.",
		humanDesc: "Implement the 3-state Moore FSM whose output goes high one cycle after the input sequence high-then-low is observed.",
		clock:     "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	input in,
	output out
);
	reg [1:0] state;
	reg [1:0] next;
	always @(posedge clk) begin
		if (reset)
			state <= 0;
		else
			state <= next;
	end
	always @(*) begin
		case (state)
			2'd0: next = in ? 2'd1 : 2'd0;
			2'd1: next = in ? 2'd1 : 2'd2;
			2'd2: next = in ? 2'd1 : 2'd0;
			default: next = 2'd0;
		endcase
	end
	assign out = state == 2'd2;
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			state := uint64(0)
			reset := func() { state = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					state = 0
				} else {
					x := u64(in, "in") & 1
					switch state {
					case 0:
						if x == 1 {
							state = 1
						}
					case 1:
						if x == 0 {
							state = 2
						}
					case 2:
						if x == 1 {
							state = 1
						} else {
							state = 0
						}
					}
				}
				z := uint64(0)
				if state == 2 {
					z = 1
				}
				return out1("out", 1, z)
			}
			return reset, step
		}),
	})

	addCircuit(circuit{
		baseID:     "fsm_onehot3",
		difficulty: Hard,
		machineDesc: "A one-hot 3-state FSM in a 3-bit register: reset loads 3'b001; from 001 go to 010 on go, from 010 always to 100, " +
			"from 100 back to 001. done is high in state 100.",
		humanDesc: "Build a one-hot encoded 3-state sequencer triggered by a go pulse, asserting done in its final state.",
		clock:     "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	input go,
	output done
);
	reg [2:0] state;
	always @(posedge clk) begin
		if (reset)
			state <= 3'b001;
		else begin
			case (state)
				3'b001: state <= go ? 3'b010 : 3'b001;
				3'b010: state <= 3'b100;
				3'b100: state <= 3'b001;
				default: state <= 3'b001;
			endcase
		end
	end
	assign done = state[2];
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			state := uint64(1)
			reset := func() { state = 1 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					state = 1
				} else {
					switch state {
					case 1:
						if u64(in, "go") == 1 {
							state = 2
						}
					case 2:
						state = 4
					case 4:
						state = 1
					default:
						state = 1
					}
				}
				return out1("done", 1, (state>>2)&1)
			}
			return reset, step
		}),
	})

	addCircuit(circuit{
		baseID:     "arbiter_rr2",
		difficulty: Hard,
		machineDesc: "A 2-request round-robin arbiter: grant[i] goes to a single requester each cycle; when both request, alternate starting " +
			"with requester 0 after reset (track a last-grant bit).",
		humanDesc: "Design a two-port round-robin arbiter that alternates grants under contention.",
		clock:     "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	input [1:0] req,
	output reg [1:0] grant
);
	reg last;
	always @(posedge clk) begin
		if (reset) begin
			grant <= 0;
			last <= 1;
		end else begin
			grant <= 0;
			if (req[0] & req[1]) begin
				if (last) begin
					grant <= 2'b01;
					last <= 0;
				end else begin
					grant <= 2'b10;
					last <= 1;
				end
			end else if (req[0]) begin
				grant <= 2'b01;
				last <= 0;
			end else if (req[1]) begin
				grant <= 2'b10;
				last <= 1;
			end
		end
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			grant, last := uint64(0), uint64(1)
			reset := func() { grant, last = 0, 1 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					grant, last = 0, 1
					return out1("grant", 2, grant)
				}
				req := u64(in, "req") & 3
				grant = 0
				switch {
				case req == 3:
					if last == 1 {
						grant, last = 1, 0
					} else {
						grant, last = 2, 1
					}
				case req&1 == 1:
					grant, last = 1, 0
				case req&2 == 2:
					grant, last = 2, 1
				}
				return out1("grant", 2, grant)
			}
			return reset, step
		}),
	})

	addCircuit(circuit{
		baseID:      "serial2parallel_w8",
		difficulty:  Hard,
		machineDesc: "Shift the serial input sin into an 8-bit register MSB-first; every 8th cycle copy the register to dout and pulse valid. Use a 3-bit cycle counter with synchronous reset.",
		humanDesc:   "Convert a serial bit stream into bytes: after every eight input bits, present the assembled byte with a valid pulse.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	input sin,
	output reg [7:0] dout,
	output reg valid
);
	reg [7:0] sh;
	reg [2:0] cnt;
	always @(posedge clk) begin
		if (reset) begin
			sh <= 0;
			cnt <= 0;
			valid <= 0;
			dout <= 0;
		end else begin
			sh <= {sh[6:0], sin};
			if (cnt == 7) begin
				cnt <= 0;
				dout <= {sh[6:0], sin};
				valid <= 1;
			end else begin
				cnt <= cnt + 1;
				valid <= 0;
			end
		end
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var sh, cnt, dout, valid uint64
			reset := func() { sh, cnt, dout, valid = 0, 0, 0, 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "reset") == 1 {
					sh, cnt, dout, valid = 0, 0, 0, 0
				} else {
					nsh := ((sh << 1) | (u64(in, "sin") & 1)) & 0xFF
					if cnt == 7 {
						cnt = 0
						dout = nsh
						valid = 1
					} else {
						cnt++
						valid = 0
					}
					sh = nsh
				}
				return map[string]bitvec.Vec{
					"dout":  bitvec.FromUint64(8, dout),
					"valid": bitvec.FromUint64(1, valid),
				}
			}
			return reset, step
		}),
	})

	addCircuit(circuit{
		baseID:      "timer_countdown_w8",
		difficulty:  Hard,
		machineDesc: "When load is high, capture the 8-bit input value into an internal counter; otherwise decrement it to zero and hold. Output tc is high while the counter is zero.",
		humanDesc:   "Build a loadable countdown timer that signals terminal count when it reaches zero.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input load,
	input [7:0] value,
	output tc
);
	reg [7:0] cnt;
	always @(posedge clk) begin
		if (load)
			cnt <= value;
		else if (cnt != 0)
			cnt <= cnt - 1;
	end
	assign tc = cnt == 0;
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			cnt := uint64(0)
			reset := func() { cnt = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "load") == 1 {
					cnt = u64(in, "value") & 0xFF
				} else if cnt != 0 {
					cnt--
				}
				tc := uint64(0)
				if cnt == 0 {
					tc = 1
				}
				return out1("tc", 1, tc)
			}
			return reset, step
		}),
	})

	addCircuit(circuit{
		baseID:      "pulse_stretch_4",
		difficulty:  Hard,
		machineDesc: "Whenever in pulses high, hold out high for exactly 4 cycles using a 2-bit down counter; retrigger restarts the window. Synchronous reset.",
		humanDesc:   "Stretch single-cycle input pulses into four-cycle output pulses, with retrigger.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	input in,
	output out
);
	reg [2:0] cnt;
	always @(posedge clk) begin
		if (reset)
			cnt <= 0;
		else if (in)
			cnt <= 4;
		else if (cnt != 0)
			cnt <= cnt - 1;
	end
	assign out = cnt != 0;
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			cnt := uint64(0)
			reset := func() { cnt = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				switch {
				case u64(in, "reset") == 1:
					cnt = 0
				case u64(in, "in") == 1:
					cnt = 4
				case cnt != 0:
					cnt--
				}
				o := uint64(0)
				if cnt != 0 {
					o = 1
				}
				return out1("out", 1, o)
			}
			return reset, step
		}),
	})
}
