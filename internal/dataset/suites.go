package dataset

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitvec"
)

// This file assembles the suites from the circuit definitions:
//
//   - Human: all 156 circuits with high-level descriptions, re-split into
//     71 easy / 85 hard by complexity score, matching the paper's split of
//     VerilogEval-Human at the 0.1 pass-rate threshold.
//   - Machine: the same circuits minus every 12th (143 total), with
//     low-level mechanical descriptions, as VerilogEval-Machine's
//     LLM-generated descriptions are.
//   - RTLLM: the separate large-design suite.

// extra width sweeps and small families that round the corpus out to the
// paper's suite sizes.
func init() {
	// three-input gates
	for _, g := range []struct {
		name string
		expr string
		eval func(a, b, c uint64) uint64
	}{
		{"and3", "a & b & c", func(a, b, c uint64) uint64 { return a & b & c }},
		{"or3", "a | b | c", func(a, b, c uint64) uint64 { return a | b | c }},
		{"xor3", "a ^ b ^ c", func(a, b, c uint64) uint64 { return a ^ b ^ c }},
	} {
		for _, w := range []int{1, 8} {
			g, w := g, w
			addCircuit(circuit{
				baseID:      fmt.Sprintf("gate_%s_w%d", g.name, w),
				difficulty:  Easy,
				machineDesc: fmt.Sprintf("Assign out to %s for the %d-bit inputs a, b, and c.", g.expr, w),
				humanDesc:   fmt.Sprintf("Implement a %d-bit three-input %s gate.", w, strings.TrimSuffix(g.name, "3")),
				src: fmt.Sprintf(`%s (
	input [%d:0] a,
	input [%d:0] b,
	input [%d:0] c,
	output [%d:0] out
);
	assign out = %s;
endmodule
`, stdHeader, w-1, w-1, w-1, w-1, g.expr),
				golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
					return out1("out", w, g.eval(u64(in, "a"), u64(in, "b"), u64(in, "c"))&mask(w))
				}),
			})
		}
	}
	// reduction operators
	for _, r := range []struct {
		name string
		op   string
		eval func(v bitvec.Vec, w int) uint64
	}{
		{"redand", "&", func(v bitvec.Vec, w int) uint64 {
			if v.PopCount() == w {
				return 1
			}
			return 0
		}},
		{"redor", "|", func(v bitvec.Vec, w int) uint64 {
			if v.Bool() {
				return 1
			}
			return 0
		}},
		{"redxor", "^", func(v bitvec.Vec, w int) uint64 { return uint64(v.PopCount() & 1) }},
	} {
		for _, w := range []int{8, 16} {
			r, w := r, w
			addCircuit(circuit{
				baseID:      fmt.Sprintf("%s_w%d", r.name, w),
				difficulty:  Easy,
				machineDesc: fmt.Sprintf("Assign out to the unary reduction %sin over the %d-bit input in.", r.op, w),
				humanDesc:   fmt.Sprintf("Reduce a %d-bit input to a single bit with the %s operator applied across all bits.", w, r.op),
				src: fmt.Sprintf(`%s (
	input [%d:0] in,
	output out
);
	assign out = %sin;
endmodule
`, stdHeader, w-1, r.op),
				golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
					return out1("out", 1, r.eval(vec(in, "in").Resize(w), w))
				}),
			})
		}
	}
	// half/full adder bit slices
	addCircuit(circuit{
		baseID:      "half_adder",
		difficulty:  Easy,
		machineDesc: "Assign sum to a ^ b and cout to a & b for the 1-bit inputs.",
		humanDesc:   "Implement a half adder.",
		src: stdHeader + ` (
	input a,
	input b,
	output sum,
	output cout
);
	assign sum = a ^ b;
	assign cout = a & b;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			a, b := u64(in, "a")&1, u64(in, "b")&1
			return map[string]bitvec.Vec{
				"sum":  bitvec.FromUint64(1, a^b),
				"cout": bitvec.FromUint64(1, a&b),
			}
		}),
	})
	addCircuit(circuit{
		baseID:      "full_adder",
		difficulty:  Easy,
		machineDesc: "Compute {cout, sum} = a + b + cin for 1-bit inputs using a concatenated assignment.",
		humanDesc:   "Implement a single-bit full adder.",
		src: stdHeader + ` (
	input a,
	input b,
	input cin,
	output sum,
	output cout
);
	assign {cout, sum} = a + b + cin;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			t := (u64(in, "a") & 1) + (u64(in, "b") & 1) + (u64(in, "cin") & 1)
			return map[string]bitvec.Vec{
				"sum":  bitvec.FromUint64(1, t&1),
				"cout": bitvec.FromUint64(1, t>>1),
			}
		}),
	})
	// detectors
	addCircuit(circuit{
		baseID:      "zero_detect_w8",
		difficulty:  Easy,
		machineDesc: "Set zero when the 8-bit input in equals 0.",
		humanDesc:   "Detect the all-zeros condition on an 8-bit bus.",
		src: stdHeader + ` (
	input [7:0] in,
	output zero
);
	assign zero = in == 0;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			z := uint64(0)
			if u64(in, "in")&0xFF == 0 {
				z = 1
			}
			return out1("zero", 1, z)
		}),
	})
	addCircuit(circuit{
		baseID:      "allones_detect_w8",
		difficulty:  Easy,
		machineDesc: "Set ones when the 8-bit input in equals 8'hFF, using the AND reduction.",
		humanDesc:   "Detect the all-ones condition on an 8-bit bus.",
		src: stdHeader + ` (
	input [7:0] in,
	output ones
);
	assign ones = &in;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			o := uint64(0)
			if u64(in, "in")&0xFF == 0xFF {
				o = 1
			}
			return out1("ones", 1, o)
		}),
	})
	addCircuit(circuit{
		baseID:      "range_detect_w8",
		difficulty:  Easy,
		machineDesc: "Set hit when the 8-bit input in is between 32 and 96 inclusive (two comparisons ANDed).",
		humanDesc:   "Detect whether a byte falls inside the range [32, 96].",
		src: stdHeader + ` (
	input [7:0] in,
	output hit
);
	assign hit = (in >= 32) && (in <= 96);
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			v := u64(in, "in") & 0xFF
			h := uint64(0)
			if v >= 32 && v <= 96 {
				h = 1
			}
			return out1("hit", 1, h)
		}),
	})
	addCircuit(circuit{
		baseID:      "majority3",
		difficulty:  Easy,
		machineDesc: "Assign out to the majority of the three 1-bit inputs: (a&b) | (a&c) | (b&c).",
		humanDesc:   "Implement a 3-input majority voter.",
		src: stdHeader + ` (
	input a,
	input b,
	input c,
	output out
);
	assign out = (a & b) | (a & c) | (b & c);
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			a, b, c := u64(in, "a")&1, u64(in, "b")&1, u64(in, "c")&1
			return out1("out", 1, (a&b)|(a&c)|(b&c))
		}),
	})
	addCircuit(circuit{
		baseID:      "clamp_w8",
		difficulty:  Easy,
		machineDesc: "Assign out to in when in is below 200, otherwise to 200 (ternary on a comparison).",
		humanDesc:   "Clamp a byte value to a maximum of 200.",
		src: stdHeader + ` (
	input [7:0] in,
	output [7:0] out
);
	assign out = in < 200 ? in : 8'd200;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			v := u64(in, "in") & 0xFF
			if v > 200 {
				v = 200
			}
			return out1("out", 8, v)
		}),
	})
	addCircuit(circuit{
		baseID:      "nibble_swap_w8",
		difficulty:  Easy,
		machineDesc: "Swap the nibbles of the 8-bit input: out = {in[3:0], in[7:4]}.",
		humanDesc:   "Exchange the upper and lower halves of a byte.",
		src: stdHeader + ` (
	input [7:0] in,
	output [7:0] out
);
	assign out = {in[3:0], in[7:4]};
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			v := u64(in, "in") & 0xFF
			return out1("out", 8, ((v&0xF)<<4)|(v>>4))
		}),
	})
	// capture register and enabled/up-down counters
	addCircuit(circuit{
		baseID:      "capture_reg_w8",
		difficulty:  Easy,
		machineDesc: "When load is high, register the 8-bit input d into q on the clock edge; hold q otherwise.",
		humanDesc:   "Build a byte-wide capture register with a load strobe.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input load,
	input [7:0] d,
	output reg [7:0] q
);
	always @(posedge clk)
		if (load)
			q <= d;
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var q uint64
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "load") == 1 {
					q = u64(in, "d") & 0xFF
				}
				return out1("q", 8, q)
			}
			return reset, step
		}),
	})
	for _, w := range []int{4, 8} {
		w := w
		addCircuit(circuit{
			baseID:      fmt.Sprintf("counter_en_w%d", w),
			difficulty:  Easy,
			machineDesc: fmt.Sprintf("Increment the %d-bit q on the clock edge only while ena is high; synchronous reset clears q.", w),
			humanDesc:   fmt.Sprintf("Build a %d-bit counter with a count-enable input.", w),
			clock:       "clk",
			src: fmt.Sprintf(`%s (
	input clk,
	input reset,
	input ena,
	output reg [%d:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else if (ena)
			q <= q + 1;
	end
endmodule
`, stdHeader, w-1),
			golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
				var q uint64
				reset := func() { q = 0 }
				step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
					if u64(in, "reset") == 1 {
						q = 0
					} else if u64(in, "ena") == 1 {
						q = (q + 1) & mask(w)
					}
					return out1("q", w, q)
				}
				return reset, step
			}),
		})
	}
	addCircuit(circuit{
		baseID:      "updown_counter_w4",
		difficulty:  Hard,
		machineDesc: "A 4-bit counter that increments when up is high and decrements otherwise, wrapping both ways; synchronous reset clears it.",
		humanDesc:   "Build a 4-bit up/down counter controlled by a direction input.",
		clock:       "clk",
		src: stdHeader + ` (
	input clk,
	input reset,
	input up,
	output reg [3:0] q
);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else if (up)
			q <= q + 1;
		else
			q <= q - 1;
	end
endmodule
`,
		golden: seqGolden(func() (func(), func(map[string]bitvec.Vec) map[string]bitvec.Vec) {
			var q uint64
			reset := func() { q = 0 }
			step := func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				switch {
				case u64(in, "reset") == 1:
					q = 0
				case u64(in, "up") == 1:
					q = (q + 1) & 0xF
				default:
					q = (q - 1) & 0xF
				}
				return out1("q", 4, q)
			}
			return reset, step
		}),
	})
}

// complexityScore rates how demanding a circuit is from a high-level
// description: this implements the paper's empirical easy/hard split (the
// 0.1 pass-rate threshold on Human) without hand-labelling.
func complexityScore(c circuit) int {
	score := len(c.src)
	if c.clock != "" {
		score += 120
	}
	if strings.Contains(c.src, "for (") {
		score += 150
	}
	if strings.Contains(c.src, "case") {
		score += 120
	}
	if strings.Contains(c.src, "always") {
		score += 60
	}
	// wide vectors are disproportionately error-prone
	for _, wide := range []string{"[99:0]", "[63:0]", "[31:0]", "[15:0]"} {
		if strings.Contains(c.src, wide) {
			score += 60
			break
		}
	}
	if c.difficulty == Hard {
		score += 200 // authored difficulty is a strong prior
	}
	return score
}

// humanSuiteSize and machineSuiteSize mirror VerilogEval's problem counts.
const (
	humanSuiteSize   = 156
	humanHardCount   = 85
	machineSuiteSize = 143
)

func init() {
	circuits := append([]circuit(nil), allCircuits...)
	sort.Slice(circuits, func(i, j int) bool { return circuits[i].baseID < circuits[j].baseID })
	if len(circuits) != humanSuiteSize {
		panic(fmt.Sprintf("dataset: expected %d circuits, have %d — adjust the sweeps",
			humanSuiteSize, len(circuits)))
	}

	// Re-split difficulty: top humanHardCount by complexity are hard.
	type scored struct {
		idx   int
		score int
	}
	ranked := make([]scored, len(circuits))
	for i, c := range circuits {
		ranked[i] = scored{i, complexityScore(c)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return circuits[ranked[i].idx].baseID < circuits[ranked[j].idx].baseID
	})
	for rank, r := range ranked {
		if rank < humanHardCount {
			circuits[r.idx].difficulty = Hard
		} else {
			circuits[r.idx].difficulty = Easy
		}
	}

	for i, c := range circuits {
		register(&Problem{
			ID:          c.baseID,
			Suite:       SuiteHuman,
			Difficulty:  c.difficulty,
			Description: c.humanDesc,
			RefSource:   c.src,
			Clock:       c.clock,
			NewGolden:   c.golden,
			Cycles:      c.cycles,
		})
		// Machine drops every 12th circuit to land on 143 problems.
		if (i+1)%12 == 0 {
			continue
		}
		register(&Problem{
			ID:          c.baseID,
			Suite:       SuiteMachine,
			Difficulty:  c.difficulty,
			Description: c.machineDesc,
			RefSource:   c.src,
			Clock:       c.clock,
			NewGolden:   c.golden,
			Cycles:      c.cycles,
		})
	}

	for _, c := range rtllmCircuits {
		register(&Problem{
			ID:          c.baseID,
			Suite:       SuiteRTLLM,
			Difficulty:  c.difficulty,
			Description: c.humanDesc,
			RefSource:   c.src,
			Clock:       c.clock,
			NewGolden:   c.golden,
			Cycles:      c.cycles,
		})
	}
}
