package dataset

// Differential tests: the compiled simulation engine against the legacy
// tree-walker over the entire curated corpus, under seeded random
// stimulus. These are the acceptance gate for the engine — every output
// of every problem must be bit-identical on both backends, cycle by
// cycle, including testbench mismatch accounting, so every benchmark
// table stays byte-identical with the engine on.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/compiler"
	"repro/internal/fixer"
	"repro/internal/llm"
	"repro/internal/sim"
)

// lockstep drives the same vectors through both simulators and compares
// every output port after every cycle. It returns an error describing the
// first divergence.
func lockstep(p *Problem, eng, wlk *sim.Simulator, vectors []sim.Vector) error {
	outputs := eng.Design().Outputs()
	for cyc, vec := range vectors {
		for _, s := range []*sim.Simulator{eng, wlk} {
			for name, v := range vec.Inputs {
				if name == p.Clock {
					continue
				}
				if err := s.SetInput(name, v); err != nil {
					return fmt.Errorf("cycle %d: SetInput(%s): %v", cyc, name, err)
				}
			}
		}
		errE, errW := eng.Settle(), wlk.Settle()
		if (errE == nil) != (errW == nil) {
			return fmt.Errorf("cycle %d: settle disagreement: engine=%v walker=%v", cyc, errE, errW)
		}
		if errE != nil {
			return nil // both faulted identically; nothing further to compare
		}
		if p.Clock != "" {
			errE, errW = eng.ClockPulse(p.Clock), wlk.ClockPulse(p.Clock)
			if (errE == nil) != (errW == nil) {
				return fmt.Errorf("cycle %d: clock disagreement: engine=%v walker=%v", cyc, errE, errW)
			}
			if errE != nil {
				return nil
			}
		}
		for _, o := range outputs {
			ev, wv := eng.Get(o.Name), wlk.Get(o.Name)
			if ev.Width() != wv.Width() || !ev.Eq(wv) {
				return fmt.Errorf("cycle %d: output %s: engine=%s walker=%s", cyc, o.Name, ev.Hex(), wv.Hex())
			}
		}
	}
	// Final full-state sweep: internal signals must agree too, not just
	// ports — a stale internal register would poison later cycles.
	for name := range eng.Design().Signals {
		ev, wv := eng.Get(name), wlk.Get(name)
		if !ev.Eq(wv) {
			return fmt.Errorf("final state: signal %s: engine=%s walker=%s", name, ev.Hex(), wv.Hex())
		}
	}
	return nil
}

// TestDifferentialCorpus drives every curated problem on both backends
// with two independent stimulus seeds.
func TestDifferentialCorpus(t *testing.T) {
	fallbacks := 0
	total := 0
	for _, suite := range []Suite{SuiteHuman, SuiteMachine, SuiteRTLLM} {
		for _, p := range Problems(suite) {
			total++
			_, design, diags := compiler.Frontend(p.RefSource)
			if design == nil {
				t.Fatalf("%s/%s: reference does not compile: %s", suite, p.ID, diags.Summary())
			}
			prog, err := sim.Compile(design)
			if err != nil {
				fallbacks++
				t.Logf("%s/%s: engine fallback: %v", suite, p.ID, err)
				continue
			}
			for _, seed := range []int64{1, 99} {
				vectors, err := p.Vectors(rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("%s/%s: vectors: %v", suite, p.ID, err)
				}
				eng := sim.NewFromProgram(prog)
				wlk, err := sim.NewWith(design, sim.EngineWalker)
				if err != nil {
					t.Fatalf("%s/%s: walker: %v", suite, p.ID, err)
				}
				if !wlk.Compiled() && eng.Compiled() {
					// sanity: the two handles really are different backends
				} else if wlk.Compiled() {
					t.Fatalf("%s/%s: walker handle reports compiled", suite, p.ID)
				}
				if err := lockstep(p, eng, wlk, vectors); err != nil {
					t.Errorf("%s/%s seed %d: %v", suite, p.ID, seed, err)
				}
			}
		}
	}
	// The corpus is the engine's reason to exist: silent mass fallback
	// would void the perf claim while this test kept passing vacuously.
	if fallbacks > 0 {
		t.Errorf("%d/%d corpus designs fell back to the walker; the compiled engine must cover the corpus", fallbacks, total)
	}
}

// TestDifferentialTestbenchAccounting compares full testbench results —
// cycle counts, mismatch counts, and the formatted first-mismatch
// position — between backends, using a deliberately wrong candidate so
// the mismatch path is exercised.
func TestDifferentialTestbenchAccounting(t *testing.T) {
	checked := 0
	for _, suite := range []Suite{SuiteHuman, SuiteRTLLM} {
		for _, p := range Problems(suite) {
			_, design, _ := compiler.Frontend(p.RefSource)
			if design == nil {
				t.Fatalf("%s/%s: reference does not compile", suite, p.ID)
			}
			prog, err := sim.Compile(design)
			if err != nil {
				continue
			}
			vectors, err := p.Vectors(rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatalf("%s/%s: vectors: %v", suite, p.ID, err)
			}
			wlk, err := sim.NewWith(design, sim.EngineWalker)
			if err != nil {
				t.Fatal(err)
			}
			// A golden model that deliberately disagrees on every cycle
			// forces mismatch accounting through both backends.
			wrong := func() sim.Golden {
				inner := p.NewGolden()
				return &invertingGolden{inner: inner}
			}
			for _, mk := range []func() sim.Golden{p.NewGolden, wrong} {
				re, errE := sim.RunTestbenchSim(sim.NewFromProgram(prog), p.Clock, vectors, mk())
				rw, errW := sim.RunTestbenchSim(wlk, p.Clock, vectors, mk())
				if (errE == nil) != (errW == nil) {
					t.Fatalf("%s/%s: error disagreement: %v vs %v", suite, p.ID, errE, errW)
				}
				if re != rw {
					t.Errorf("%s/%s: testbench result diverged:\n  engine: %+v\n  walker: %+v", suite, p.ID, re, rw)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no problems checked")
	}
}

// invertingGolden wraps a golden model and complements every expected
// output, guaranteeing mismatches whose positions both backends must
// report identically.
type invertingGolden struct{ inner sim.Golden }

func (g *invertingGolden) Reset() { g.inner.Reset() }

func (g *invertingGolden) Step(in map[string]bitvec.Vec) map[string]bitvec.Vec {
	out := g.inner.Step(in)
	flipped := make(map[string]bitvec.Vec, len(out))
	for k, v := range out {
		flipped[k] = v.Not()
	}
	return flipped
}

// TestDifferentialGeneratedCandidates fuzzes the backends with what the
// oracle actually scores in production: LLM-style corrupted samples run
// through the rule-based pre-fixer. Every candidate that elaborates and
// compiles must behave identically on both backends.
func TestDifferentialGeneratedCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	problems := Problems(SuiteHuman)
	simulated, compared := 0, 0
	for pi := 0; pi < len(problems); pi += 7 {
		p := problems[pi]
		rates := llm.SkewRates(llm.RatesFor(string(p.Suite), string(p.Difficulty)), p.ID)
		for sample := 0; sample < 4; sample++ {
			code := fixer.Fix(llm.Generate(p.RefSource, rates, rng).Code).Code
			_, design, _ := compiler.Frontend(code)
			if design == nil {
				continue // compile errors never reach the simulator
			}
			simulated++
			prog, err := sim.Compile(design)
			if err != nil {
				continue // fallback candidates run the walker on both sides
			}
			vectors, err := p.Vectors(rand.New(rand.NewSource(int64(pi*31 + sample))))
			if err != nil {
				t.Fatal(err)
			}
			wlk, err := sim.NewWith(design, sim.EngineWalker)
			if err != nil {
				t.Fatal(err)
			}
			re, errE := sim.RunTestbenchSim(sim.NewFromProgram(prog), p.Clock, vectors, p.NewGolden())
			rw, errW := sim.RunTestbenchSim(wlk, p.Clock, vectors, p.NewGolden())
			if (errE == nil) != (errW == nil) {
				t.Fatalf("%s sample %d: error disagreement: %v vs %v", p.ID, sample, errE, errW)
			}
			if re != rw {
				t.Errorf("%s sample %d: verdict diverged:\n  engine: %+v\n  walker: %+v", p.ID, sample, re, rw)
			}
			compared++
		}
	}
	if compared < 10 {
		t.Fatalf("only %d/%d candidates compared; fuzz corpus too thin", compared, simulated)
	}
	t.Logf("compared %d compiled candidates (%d simulated)", compared, simulated)
}
