package dataset

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/sim"
)

// circuit is the suite-independent definition of one benchmark design.
// suites.go instantiates it into Machine- and Human-track problems with
// the appropriate description style.
type circuit struct {
	baseID      string
	difficulty  Difficulty
	machineDesc string
	humanDesc   string
	src         string
	clock       string
	golden      func() sim.Golden
	cycles      int
}

// allCircuits accumulates every registered circuit definition.
var allCircuits []circuit

func addCircuit(c circuit) { allCircuits = append(allCircuits, c) }

const stdHeader = "module top_module"

// ---------- bitwise NOT ----------

func init() {
	for _, w := range []int{2, 3, 4, 8, 12, 16, 24, 32, 64, 100} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("not_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"Assign the output out to the bitwise complement of the %d-bit input in.", w),
			humanDesc: fmt.Sprintf(
				"Build a circuit that inverts every bit of a %d-bit bus: the output is the one's complement of the input.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] in,
	output [%d:0] out
);
	assign out = ~in;
endmodule
`, stdHeader, w-1, w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				return map[string]bitvec.Vec{"out": vec(in, "in").Not()}
			}),
		})
	}
}

// ---------- two-input gates ----------

func init() {
	type gate struct {
		name string
		expr string
		eval func(a, b uint64) uint64
	}
	gates := []gate{
		{"and", "a & b", func(a, b uint64) uint64 { return a & b }},
		{"or", "a | b", func(a, b uint64) uint64 { return a | b }},
		{"xor", "a ^ b", func(a, b uint64) uint64 { return a ^ b }},
		{"nand", "~(a & b)", func(a, b uint64) uint64 { return ^(a & b) }},
		{"nor", "~(a | b)", func(a, b uint64) uint64 { return ^(a | b) }},
		{"xnor", "~(a ^ b)", func(a, b uint64) uint64 { return ^(a ^ b) }},
	}
	for _, g := range gates {
		for _, w := range []int{1, 4, 8, 16} {
			g, w := g, w
			addCircuit(circuit{
				baseID:     fmt.Sprintf("gate_%s_w%d", g.name, w),
				difficulty: Easy,
				machineDesc: fmt.Sprintf(
					"Assign the output out to %s where a and b are %d-bit inputs.", g.expr, w),
				humanDesc: fmt.Sprintf(
					"Implement a %d-bit wide %s gate over the two inputs a and b.", w, g.name),
				src: fmt.Sprintf(`%s (
	input [%d:0] a,
	input [%d:0] b,
	output [%d:0] out
);
	assign out = %s;
endmodule
`, stdHeader, w-1, w-1, w-1, g.expr),
				golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
					return out1("out", w, g.eval(u64(in, "a"), u64(in, "b"))&mask(w))
				}),
			})
		}
	}
}

// ---------- 2:1 and 4:1 multiplexers ----------

func init() {
	for _, w := range []int{1, 4, 8, 16, 32, 100} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("mux2_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"Assign out to b when sel is 1 and to a when sel is 0; a and b are %d-bit inputs.", w),
			humanDesc: fmt.Sprintf(
				"Create a %d-bit 2-to-1 multiplexer selecting between a and b with the select input sel.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] a,
	input [%d:0] b,
	input sel,
	output [%d:0] out
);
	assign out = sel ? b : a;
endmodule
`, stdHeader, w-1, w-1, w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				if u64(in, "sel") == 1 {
					return map[string]bitvec.Vec{"out": vec(in, "b")}
				}
				return map[string]bitvec.Vec{"out": vec(in, "a")}
			}),
		})
	}
	for _, w := range []int{2, 8} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("mux4_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"Using a case statement on the 2-bit select sel, route d0/d1/d2/d3 (%d-bit each) to out.", w),
			humanDesc: fmt.Sprintf(
				"Build a %d-bit 4-to-1 multiplexer with data inputs d0 through d3 and a 2-bit select.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] d0,
	input [%d:0] d1,
	input [%d:0] d2,
	input [%d:0] d3,
	input [1:0] sel,
	output reg [%d:0] out
);
	always @(*) begin
		case (sel)
			2'b00: out = d0;
			2'b01: out = d1;
			2'b10: out = d2;
			default: out = d3;
		endcase
	end
endmodule
`, stdHeader, w-1, w-1, w-1, w-1, w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				name := fmt.Sprintf("d%d", u64(in, "sel")&3)
				return map[string]bitvec.Vec{"out": vec(in, name)}
			}),
		})
	}
}

// ---------- bit reversal (the paper's running example) ----------

func init() {
	for _, cfg := range []struct {
		w    int
		diff Difficulty
	}{{8, Easy}, {32, Easy}, {100, Hard}} {
		w, diff := cfg.w, cfg.diff
		addCircuit(circuit{
			baseID:     fmt.Sprintf("vector_reverse_w%d", w),
			difficulty: diff,
			machineDesc: fmt.Sprintf(
				"Given a %d-bit input vector in[%d:0], reverse its bit ordering so out[i] equals in[%d-i].", w, w-1, w-1),
			humanDesc: fmt.Sprintf(
				"Given a %d-bit input vector, reverse its bit ordering.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] in,
	output reg [%d:0] out
);
	always @(*) begin
		for (int i = 0; i < %d; i = i + 1)
			out[i] = in[%d - i];
	end
endmodule
`, stdHeader, w-1, w-1, w, w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				v := vec(in, "in")
				out := bitvec.New(w)
				for i := 0; i < w; i++ {
					out = out.SetBit(i, v.Bit(w-1-i))
				}
				return map[string]bitvec.Vec{"out": out}
			}),
		})
	}
}

// ---------- population count ----------

func init() {
	for _, cfg := range []struct {
		w    int
		ow   int
		diff Difficulty
	}{{3, 2, Easy}, {8, 4, Easy}, {16, 5, Easy}, {32, 6, Hard}, {100, 7, Hard}} {
		w, ow, diff := cfg.w, cfg.ow, cfg.diff
		addCircuit(circuit{
			baseID:     fmt.Sprintf("popcount_w%d", w),
			difficulty: diff,
			machineDesc: fmt.Sprintf(
				"Count the number of 1 bits in the %d-bit input in using a for loop accumulating into the %d-bit output out.", w, ow),
			humanDesc: fmt.Sprintf(
				"A population-count circuit counts the number of set bits in a vector. Build one for a %d-bit input.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] in,
	output reg [%d:0] out
);
	always @(*) begin
		out = 0;
		for (int i = 0; i < %d; i = i + 1)
			out = out + in[i];
	end
endmodule
`, stdHeader, w-1, ow-1, w),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				return out1("out", ow, uint64(vec(in, "in").PopCount())&mask(ow))
			}),
		})
	}
}

// ---------- adders / subtractors ----------

func init() {
	for _, w := range []int{4, 8, 16, 24, 32} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("adder_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"Add the %d-bit inputs a and b with carry-in cin; output the %d-bit sum and the carry-out cout via a concatenated assignment.", w, w),
			humanDesc: fmt.Sprintf(
				"Implement a %d-bit full adder with carry-in and carry-out.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] a,
	input [%d:0] b,
	input cin,
	output [%d:0] sum,
	output cout
);
	assign {cout, sum} = a + b + cin;
endmodule
`, stdHeader, w-1, w-1, w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				total := u64(in, "a") + u64(in, "b") + u64(in, "cin")
				return map[string]bitvec.Vec{
					"sum":  bitvec.FromUint64(w, total&mask(w)),
					"cout": bitvec.FromUint64(1, (total>>w)&1),
				}
			}),
		})
	}
	for _, w := range []int{8, 16, 32} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("subtract_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"Subtract the %d-bit input b from a and assign the difference to out.", w),
			humanDesc: fmt.Sprintf(
				"Build a %d-bit subtractor computing a minus b with wraparound.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] a,
	input [%d:0] b,
	output [%d:0] out
);
	assign out = a - b;
endmodule
`, stdHeader, w-1, w-1, w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				return out1("out", w, (u64(in, "a")-u64(in, "b"))&mask(w))
			}),
		})
	}
	// Signed overflow detection: a known LLM stumbling block -> hard.
	addCircuit(circuit{
		baseID:     "add_overflow_w8",
		difficulty: Hard,
		machineDesc: "Add the 8-bit two's-complement inputs a and b into s, and set overflow when " +
			"the signs of a and b agree but differ from the sign of s.",
		humanDesc: "Implement an 8-bit two's-complement adder that also reports signed overflow.",
		src: stdHeader + ` (
	input [7:0] a,
	input [7:0] b,
	output [7:0] s,
	output overflow
);
	assign s = a + b;
	assign overflow = (a[7] & b[7] & ~s[7]) | (~a[7] & ~b[7] & s[7]);
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			a, b := u64(in, "a"), u64(in, "b")
			s := (a + b) & 0xFF
			ov := ((a>>7)&(b>>7)&^(s>>7))&1 | ((^a>>7)&(^b>>7)&(s>>7))&1
			return map[string]bitvec.Vec{
				"s":        bitvec.FromUint64(8, s),
				"overflow": bitvec.FromUint64(1, ov),
			}
		}),
	})
}

// ---------- decoders / encoders ----------

func init() {
	for _, n := range []int{2, 3, 4, 5} {
		n := n
		w := 1 << n
		addCircuit(circuit{
			baseID:     fmt.Sprintf("decoder_%dto%d", n, w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"Drive the %d-bit one-hot output out by shifting 1 left by the %d-bit input sel.", w, n),
			humanDesc: fmt.Sprintf(
				"Build a %d-to-%d one-hot decoder.", n, w),
			src: fmt.Sprintf(`%s (
	input [%d:0] sel,
	output [%d:0] out
);
	assign out = 1 << sel;
endmodule
`, stdHeader, n-1, w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				return out1("out", w, (uint64(1)<<u64(in, "sel"))&mask(w))
			}),
		})
	}
	for _, cfg := range []struct {
		w, ow int
		diff  Difficulty
	}{{4, 2, Easy}, {8, 3, Hard}, {16, 4, Hard}, {32, 5, Hard}} {
		w, ow, diff := cfg.w, cfg.ow, cfg.diff
		addCircuit(circuit{
			baseID:     fmt.Sprintf("priority_encoder_w%d", w),
			difficulty: diff,
			machineDesc: fmt.Sprintf(
				"Scan the %d-bit input in from bit %d down to 0 inside an always block; pos gets the index of the highest set bit (0 when none), valid is |in.", w, w-1),
			humanDesc: fmt.Sprintf(
				"Design a %d-bit priority encoder: output the index of the most significant set bit plus a valid flag.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] in,
	output reg [%d:0] pos,
	output valid
);
	assign valid = |in;
	always @(*) begin
		pos = 0;
		for (int i = 0; i < %d; i = i + 1)
			if (in[i])
				pos = i;
	end
endmodule
`, stdHeader, w-1, ow-1, w),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				v := u64(in, "in") & mask(w)
				pos := uint64(0)
				if v != 0 {
					pos = uint64(63 - bits.LeadingZeros64(v))
				}
				valid := uint64(0)
				if v != 0 {
					valid = 1
				}
				return map[string]bitvec.Vec{
					"pos":   bitvec.FromUint64(ow, pos),
					"valid": bitvec.FromUint64(1, valid),
				}
			}),
		})
	}
}

// ---------- parity / gray code ----------

func init() {
	for _, w := range []int{8, 16, 32} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("parity_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"Assign parity to the XOR reduction of the %d-bit input in.", w),
			humanDesc: fmt.Sprintf(
				"Compute the even parity bit of a %d-bit word.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] in,
	output parity
);
	assign parity = ^in;
endmodule
`, stdHeader, w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				return out1("parity", 1, uint64(vec(in, "in").PopCount()&1))
			}),
		})
	}
	for _, w := range []int{4, 8, 16, 32} {
		w := w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("bin2gray_w%d", w),
			difficulty: Easy,
			machineDesc: fmt.Sprintf(
				"Assign gray to bin XOR (bin shifted right by one) for the %d-bit input bin.", w),
			humanDesc: fmt.Sprintf(
				"Convert a %d-bit binary number to Gray code.", w),
			src: fmt.Sprintf(`%s (
	input [%d:0] bin,
	output [%d:0] gray
);
	assign gray = bin ^ (bin >> 1);
endmodule
`, stdHeader, w-1, w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				b := u64(in, "bin") & mask(w)
				return out1("gray", w, b^(b>>1))
			}),
		})
	}
}

// ---------- shifts ----------

func init() {
	addCircuit(circuit{
		baseID:      "shl_fixed_w8",
		difficulty:  Easy,
		machineDesc: "Assign out to the 8-bit input in shifted left by 2 with zero fill.",
		humanDesc:   "Shift an 8-bit word left by two positions.",
		src: stdHeader + ` (
	input [7:0] in,
	output [7:0] out
);
	assign out = in << 2;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			return out1("out", 8, (u64(in, "in")<<2)&0xFF)
		}),
	})
	addCircuit(circuit{
		baseID:      "shr_fixed_w8",
		difficulty:  Easy,
		machineDesc: "Assign out to the 8-bit input in shifted right logically by 3.",
		humanDesc:   "Shift an 8-bit word right by three positions, filling with zeros.",
		src: stdHeader + ` (
	input [7:0] in,
	output [7:0] out
);
	assign out = in >> 3;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			return out1("out", 8, (u64(in, "in")&0xFF)>>3)
		}),
	})
	for _, cfg := range []struct {
		dir  string
		expr string
		diff Difficulty
	}{{"left", "in << amt", Hard}, {"right", "in >> amt", Hard}} {
		dir, expr := cfg.dir, cfg.expr
		addCircuit(circuit{
			baseID:     fmt.Sprintf("barrel_%s_w16", dir),
			difficulty: cfg.diff,
			machineDesc: fmt.Sprintf(
				"Assign out to the 16-bit input in shifted %s by the 4-bit amount amt.", dir),
			humanDesc: fmt.Sprintf(
				"Build a 16-bit barrel shifter that shifts %s by a variable 4-bit amount.", dir),
			src: fmt.Sprintf(`%s (
	input [15:0] in,
	input [3:0] amt,
	output [15:0] out
);
	assign out = %s;
endmodule
`, stdHeader, expr),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				v := u64(in, "in") & 0xFFFF
				amt := u64(in, "amt") & 0xF
				if dir == "left" {
					return out1("out", 16, (v<<amt)&0xFFFF)
				}
				return out1("out", 16, v>>amt)
			}),
		})
	}
	addCircuit(circuit{
		baseID:      "rotate_left_w8",
		difficulty:  Hard,
		machineDesc: "Rotate the 8-bit input left by the 3-bit amount amt: out = (in << amt) | (in >> (8 - amt)).",
		humanDesc:   "Build an 8-bit left rotator with a variable rotate amount.",
		src: stdHeader + ` (
	input [7:0] in,
	input [2:0] amt,
	output [7:0] out
);
	wire [3:0] inv;
	assign inv = 8 - amt;
	assign out = (in << amt) | (in >> inv);
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			v := u64(in, "in") & 0xFF
			amt := u64(in, "amt") & 7
			out := v
			if amt != 0 {
				out = ((v << amt) | (v >> (8 - amt))) & 0xFF
			} else {
				// matches the RTL: in >> 8 is 0, so out = in << 0 | 0
				out = v
			}
			return out1("out", 8, out)
		}),
	})
}

// ---------- comparators / min-max ----------

func init() {
	addCircuit(circuit{
		baseID:      "comparator_w8",
		difficulty:  Easy,
		machineDesc: "Compare the 8-bit unsigned inputs a and b: eq is a==b, lt is a<b, gt is a>b.",
		humanDesc:   "Build an 8-bit unsigned comparator producing equal / less-than / greater-than flags.",
		src: stdHeader + ` (
	input [7:0] a,
	input [7:0] b,
	output eq,
	output lt,
	output gt
);
	assign eq = a == b;
	assign lt = a < b;
	assign gt = a > b;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			a, b := u64(in, "a"), u64(in, "b")
			bl := func(c bool) uint64 {
				if c {
					return 1
				}
				return 0
			}
			return map[string]bitvec.Vec{
				"eq": bitvec.FromUint64(1, bl(a == b)),
				"lt": bitvec.FromUint64(1, bl(a < b)),
				"gt": bitvec.FromUint64(1, bl(a > b)),
			}
		}),
	})
	addCircuit(circuit{
		baseID:      "minmax_w8",
		difficulty:  Easy,
		machineDesc: "Assign min to the smaller and max to the larger of the 8-bit unsigned inputs a and b using ternary operators.",
		humanDesc:   "Output both the minimum and maximum of two 8-bit unsigned numbers.",
		src: stdHeader + ` (
	input [7:0] a,
	input [7:0] b,
	output [7:0] min,
	output [7:0] max
);
	assign min = a < b ? a : b;
	assign max = a < b ? b : a;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			a, b := u64(in, "a"), u64(in, "b")
			mn, mx := a, b
			if b < a {
				mn, mx = b, a
			}
			return map[string]bitvec.Vec{
				"min": bitvec.FromUint64(8, mn),
				"max": bitvec.FromUint64(8, mx),
			}
		}),
	})
}

// ---------- extension / swapping / complements ----------

func init() {
	addCircuit(circuit{
		baseID:      "sign_extend_8to16",
		difficulty:  Easy,
		machineDesc: "Sign-extend the 8-bit input in to the 16-bit output out by replicating in[7] eight times in a concatenation.",
		humanDesc:   "Sign-extend an 8-bit two's-complement value to 16 bits.",
		src: stdHeader + ` (
	input [7:0] in,
	output [15:0] out
);
	assign out = {{8{in[7]}}, in};
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			v := u64(in, "in") & 0xFF
			if v&0x80 != 0 {
				v |= 0xFF00
			}
			return out1("out", 16, v)
		}),
	})
	addCircuit(circuit{
		baseID:      "byte_swap_w16",
		difficulty:  Easy,
		machineDesc: "Swap the two bytes of the 16-bit input: out = {in[7:0], in[15:8]}.",
		humanDesc:   "Reverse the byte order of a 16-bit word.",
		src: stdHeader + ` (
	input [15:0] in,
	output [15:0] out
);
	assign out = {in[7:0], in[15:8]};
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			v := u64(in, "in") & 0xFFFF
			return out1("out", 16, ((v&0xFF)<<8)|(v>>8))
		}),
	})
	addCircuit(circuit{
		baseID:      "byte_swap_w32",
		difficulty:  Easy,
		machineDesc: "Reverse the four bytes of the 32-bit input using a concatenation of 8-bit slices.",
		humanDesc:   "Convert a 32-bit word between big- and little-endian byte order.",
		src: stdHeader + ` (
	input [31:0] in,
	output [31:0] out
);
	assign out = {in[7:0], in[15:8], in[23:16], in[31:24]};
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			v := u64(in, "in")
			out := (v&0xFF)<<24 | (v>>8&0xFF)<<16 | (v>>16&0xFF)<<8 | (v >> 24 & 0xFF)
			return out1("out", 32, out)
		}),
	})
	addCircuit(circuit{
		baseID:      "twos_complement_w8",
		difficulty:  Easy,
		machineDesc: "Assign out to the two's complement (~in + 1) of the 8-bit input in.",
		humanDesc:   "Negate an 8-bit two's-complement number.",
		src: stdHeader + ` (
	input [7:0] in,
	output [7:0] out
);
	assign out = ~in + 1;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			return out1("out", 8, (-u64(in, "in"))&0xFF)
		}),
	})
	addCircuit(circuit{
		baseID:      "abs_w8",
		difficulty:  Hard,
		machineDesc: "Assign out to in when in[7] is 0, otherwise to ~in + 1 (two's-complement absolute value).",
		humanDesc:   "Compute the absolute value of an 8-bit two's-complement input.",
		src: stdHeader + ` (
	input [7:0] in,
	output [7:0] out
);
	assign out = in[7] ? (~in + 1) : in;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			v := u64(in, "in") & 0xFF
			if v&0x80 != 0 {
				v = (-v) & 0xFF
			}
			return out1("out", 8, v)
		}),
	})
}

// ---------- small multipliers (hard: arithmetic) ----------

func init() {
	for _, cfg := range []struct {
		w int
	}{{4}, {8}} {
		w := cfg.w
		addCircuit(circuit{
			baseID:     fmt.Sprintf("multiplier_w%d", w),
			difficulty: Hard,
			machineDesc: fmt.Sprintf(
				"Multiply the %d-bit unsigned inputs a and b into the %d-bit product out.", w, 2*w),
			humanDesc: fmt.Sprintf(
				"Build a %d-by-%d unsigned multiplier with a full-width product.", w, w),
			src: fmt.Sprintf(`%s (
	input [%d:0] a,
	input [%d:0] b,
	output [%d:0] out
);
	assign out = a * b;
endmodule
`, stdHeader, w-1, w-1, 2*w-1),
			golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
				return out1("out", 2*w, (u64(in, "a")&mask(w))*(u64(in, "b")&mask(w)))
			}),
		})
	}
	addCircuit(circuit{
		baseID:      "bcd_digit_valid",
		difficulty:  Easy,
		machineDesc: "Set valid when the 4-bit input digit is between 0 and 9 inclusive (digit < 10).",
		humanDesc:   "Check whether a 4-bit code is a valid BCD digit.",
		src: stdHeader + ` (
	input [3:0] digit,
	output valid
);
	assign valid = digit < 10;
endmodule
`,
		golden: combGolden(func(in map[string]bitvec.Vec) map[string]bitvec.Vec {
			v := uint64(0)
			if u64(in, "digit")&0xF < 10 {
				v = 1
			}
			return out1("valid", 1, v)
		}),
	})
}
