package dataset

import (
	"math/rand"
	"testing"

	"repro/internal/compiler"
)

func TestSuiteSizesMatchPaper(t *testing.T) {
	human := SuiteStats(SuiteHuman)
	if human.Total != 156 || human.Easy != 71 || human.Hard != 85 {
		t.Fatalf("Human suite = %+v, want 156 total, 71 easy, 85 hard", human)
	}
	machine := SuiteStats(SuiteMachine)
	if machine.Total != 143 {
		t.Fatalf("Machine suite = %+v, want 143 total", machine)
	}
	rtllm := SuiteStats(SuiteRTLLM)
	if rtllm.Total < 12 {
		t.Fatalf("RTLLM suite = %+v, want at least 12 designs", rtllm)
	}
}

func TestUniqueIDs(t *testing.T) {
	for _, suite := range []Suite{SuiteHuman, SuiteMachine, SuiteRTLLM} {
		seen := map[string]bool{}
		for _, p := range Problems(suite) {
			if seen[p.ID] {
				t.Errorf("%s: duplicate ID %s", suite, p.ID)
			}
			seen[p.ID] = true
		}
	}
}

func TestMachineIsSubsetOfHumanCircuits(t *testing.T) {
	humanIDs := map[string]bool{}
	for _, p := range Problems(SuiteHuman) {
		humanIDs[p.ID] = true
	}
	for _, p := range Problems(SuiteMachine) {
		if !humanIDs[p.ID] {
			t.Errorf("machine problem %s not in human suite", p.ID)
		}
	}
}

func TestDescriptionStylesDiffer(t *testing.T) {
	differs := 0
	for _, mp := range Problems(SuiteMachine) {
		hp, ok := ByID(SuiteHuman, mp.ID)
		if !ok {
			continue
		}
		if mp.Description != hp.Description {
			differs++
		}
	}
	if differs < 100 {
		t.Fatalf("only %d problems have distinct machine/human descriptions", differs)
	}
}

// TestAllReferencesCompile is the dataset's most important invariant:
// every reference implementation must pass the frontend cleanly.
func TestAllReferencesCompile(t *testing.T) {
	for _, suite := range []Suite{SuiteHuman, SuiteRTLLM} {
		for _, p := range Problems(suite) {
			_, design, diags := compiler.Frontend(p.RefSource)
			if design == nil {
				t.Errorf("%s/%s: reference does not compile: %s", suite, p.ID, diags.Summary())
			}
		}
	}
}

// TestAllReferencesPassOwnTestbench closes the loop: the reference
// implementation simulated against the golden model must match on every
// vector. A failure means either the RTL, the model, or the simulator is
// wrong.
func TestAllReferencesPassOwnTestbench(t *testing.T) {
	for _, suite := range []Suite{SuiteHuman, SuiteRTLLM} {
		for _, p := range Problems(suite) {
			p := p
			t.Run(string(suite)+"/"+p.ID, func(t *testing.T) {
				rng := rand.New(rand.NewSource(1234))
				res, err := p.Check(p.RefSource, rng)
				if err != nil {
					t.Fatalf("testbench error: %v", err)
				}
				if !res.Passed() {
					t.Fatalf("reference fails its own testbench: %s (%d/%d mismatches)",
						res.FirstMismatch, res.Mismatches, res.Cycles)
				}
			})
		}
	}
}

func TestVectorsDriveAllInputs(t *testing.T) {
	p, ok := ByID(SuiteHuman, "counter_up_w8")
	if !ok {
		t.Fatal("missing problem")
	}
	rng := rand.New(rand.NewSource(7))
	vectors, err := p.Vectors(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) < 32 {
		t.Fatalf("only %d vectors", len(vectors))
	}
	// reset preamble held high
	if vectors[0].Inputs["reset"].Uint64() != 1 || vectors[1].Inputs["reset"].Uint64() != 1 {
		t.Fatal("reset preamble missing")
	}
	// clock must not be driven by vectors
	if _, drove := vectors[0].Inputs["clk"]; drove {
		t.Fatal("vectors must not drive the clock")
	}
}

func TestCheckRejectsNonCompiling(t *testing.T) {
	p, ok := ByID(SuiteHuman, "half_adder")
	if !ok {
		t.Fatal("missing problem")
	}
	rng := rand.New(rand.NewSource(9))
	if _, err := p.Check("module broken(", rng); err == nil {
		t.Fatal("non-compiling candidate must error")
	}
}
