package wave

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bitvec"
)

// Recorder is an Observer that captures sampled values for VCD (Value
// Change Dump, IEEE 1364 §18) rendering. Two modes share one type:
//
//   - window > 0: a bounded excerpt around a point of interest. The
//     recorder keeps the last window samples in a ring; Mark freezes
//     that history and records up to window further samples, then
//     stops. This is the "window around first mismatch" testbench
//     failures attach to diagnostics and model feedback.
//   - window == 0: unbounded capture of the whole run (CLI -vcd).
type Recorder struct {
	module  string
	signals []Signal

	window int
	// ring holds pre-mark history (capacity window when bounded);
	// frozen holds the ordered samples once Mark fires.
	ring   []sample
	head   int
	frozen []sample
	marked bool
	markT  uint64
	post   int // post-mark samples still to take (bounded mode)
	done   bool
}

type sample struct {
	t    uint64
	vals []bitvec.Vec
}

// NewRecorder builds a recorder. window bounds the excerpt: the last
// window samples before Mark plus up to window after it. window <= 0
// captures the entire run and Mark only annotates the point of
// interest.
func NewRecorder(window int) *Recorder {
	if window < 0 {
		window = 0
	}
	return &Recorder{window: window}
}

// Init implements Observer.
func (r *Recorder) Init(module string, signals []Signal) {
	r.module = module
	r.signals = signals
	r.ring = r.ring[:0]
	r.frozen = nil
	r.head = 0
	r.marked = false
	r.done = false
}

// Sample implements Observer: copy the snapshot (the vectors alias live
// simulator storage) into the ring or the post-mark tail.
func (r *Recorder) Sample(t uint64, vals []bitvec.Vec) {
	if r.done {
		return
	}
	s := sample{t: t, vals: make([]bitvec.Vec, len(vals))}
	for i, v := range vals {
		c := bitvec.New(v.Width())
		c.CopyResize(v)
		s.vals[i] = c
	}
	switch {
	case r.marked && r.window > 0:
		r.frozen = append(r.frozen, s)
		if r.post--; r.post <= 0 {
			r.done = true
		}
	case r.window > 0:
		if len(r.ring) < r.window {
			r.ring = append(r.ring, s)
		} else {
			r.ring[r.head] = s
			r.head = (r.head + 1) % r.window
		}
	default:
		r.ring = append(r.ring, s)
	}
}

// Mark freezes the window at the current point (the first mismatch):
// the retained history plus up to window further samples form the
// excerpt. In unbounded mode it only records the annotation timestamp.
func (r *Recorder) Mark() {
	if r.marked {
		return
	}
	r.marked = true
	if n := len(r.ring); n > 0 {
		r.markT = r.ring[(r.head+n-1)%n].t
	}
	if r.window > 0 {
		ordered := make([]sample, 0, len(r.ring)+r.window)
		for i := 0; i < len(r.ring); i++ {
			ordered = append(ordered, r.ring[(r.head+i)%len(r.ring)])
		}
		r.frozen = ordered
		r.post = r.window
	}
}

// Marked reports whether Mark has fired.
func (r *Recorder) Marked() bool { return r.marked }

// Samples returns how many snapshots the excerpt currently holds.
func (r *Recorder) Samples() int {
	if r.frozen != nil {
		return len(r.frozen)
	}
	return len(r.ring)
}

// ordered returns the retained samples oldest-first.
func (r *Recorder) ordered() []sample {
	if r.frozen != nil {
		return r.frozen
	}
	if r.window > 0 && len(r.ring) == r.window {
		out := make([]sample, 0, len(r.ring))
		for i := 0; i < len(r.ring); i++ {
			out = append(out, r.ring[(r.head+i)%len(r.ring)])
		}
		return out
	}
	return r.ring
}

// idCode maps a signal index to a VCD identifier: base-94 over the
// printable ASCII range '!'..'~', shortest code first.
func idCode(i int) string {
	var b [8]byte
	n := len(b)
	for {
		n--
		b[n] = byte('!' + i%94)
		i = i/94 - 1
		if i < 0 {
			break
		}
	}
	return string(b[n:])
}

// binStr renders a vector as the VCD binary literal (MSB first, no
// leading-zero trimming needed for correctness but standard dumps trim;
// a single 0 stands for the all-zero value).
func binStr(v bitvec.Vec) string {
	w := v.Width()
	var b strings.Builder
	seen := false
	for i := w - 1; i >= 0; i-- {
		if v.Bit(i) {
			seen = true
		}
		if seen {
			if v.Bit(i) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	if !seen {
		return "0"
	}
	return b.String()
}

// WriteVCD renders the retained samples as a VCD document: header,
// variable definitions, a full $dumpvars at the first sample, then
// per-timestep value changes only.
func (r *Recorder) WriteVCD(w io.Writer) error {
	samples := r.ordered()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if r.marked {
		pf("$comment window around observation #%d (first mismatch) $end\n", r.markT)
	}
	pf("$timescale 1ns $end\n")
	module := r.module
	if module == "" {
		module = "top"
	}
	pf("$scope module %s $end\n", module)
	for i, sig := range r.signals {
		if sig.Width == 1 {
			pf("$var wire 1 %s %s $end\n", idCode(i), sig.Name)
		} else {
			pf("$var wire %d %s %s [%d:0] $end\n", sig.Width, idCode(i), sig.Name, sig.Width-1)
		}
	}
	pf("$upscope $end\n")
	pf("$enddefinitions $end\n")

	var last []bitvec.Vec
	for si, s := range samples {
		pf("#%d\n", s.t)
		if si == 0 {
			pf("$dumpvars\n")
		}
		for i, v := range s.vals {
			if si > 0 && v.Eq(last[i]) {
				continue
			}
			if r.signals[i].Width == 1 {
				if v.Bit(0) {
					pf("1%s\n", idCode(i))
				} else {
					pf("0%s\n", idCode(i))
				}
			} else {
				pf("b%s %s\n", binStr(v), idCode(i))
			}
		}
		if si == 0 {
			pf("$end\n")
		}
		last = s.vals
	}
	return err
}

// VCD returns the rendered document, or "" when nothing was retained.
func (r *Recorder) VCD() string {
	if r.Samples() == 0 {
		return ""
	}
	var b strings.Builder
	if err := r.WriteVCD(&b); err != nil {
		return ""
	}
	return b.String()
}
