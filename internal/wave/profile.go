package wave

import (
	"fmt"
	"sort"
	"strings"
)

// EngineProfile is a compiled-engine execution profile: which opcodes
// ran and how often, how hard the fixpoint scheduler worked, and which
// design processes were hottest. The sim package fills it from its
// nil-guarded counters; wave only defines the shape so every consumer
// (diag output, /v1/stats, CLIs) shares one rendering.
type EngineProfile struct {
	// Instructions is the total executed instruction count.
	Instructions uint64 `json:"instructions"`
	// Ops is the opcode histogram, nonzero entries only, descending.
	Ops []OpCount `json:"ops,omitempty"`
	// Settles counts Settle calls; FixpointGroups is how many scheduler
	// groups needed iteration (cyclic SCCs); FixpointIters the total
	// iterations those groups ran; MaxGroupIters the worst single group.
	Settles        uint64 `json:"settles"`
	FixpointGroups int    `json:"fixpoint_groups"`
	FixpointIters  uint64 `json:"fixpoint_iters"`
	MaxGroupIters  uint64 `json:"max_group_iters"`
	// Processes lists design processes by activation count, descending.
	Processes []ProcessStat `json:"processes,omitempty"`
}

// OpCount is one opcode-histogram entry.
type OpCount struct {
	Op    string `json:"op"`
	Count uint64 `json:"count"`
}

// ProcessStat attributes activity to one design process.
type ProcessStat struct {
	// Kind is "assign", "comb" (always @*), or "seq" (edge-triggered).
	Kind string `json:"kind"`
	// Line is the source line the process starts on (0 if unknown).
	Line int `json:"line,omitempty"`
	// Activations counts how often the process body executed.
	Activations uint64 `json:"activations"`
}

// Sort orders Ops and Processes descending by count (stable on ties so
// output is deterministic).
func (p *EngineProfile) Sort() {
	sort.SliceStable(p.Ops, func(i, j int) bool { return p.Ops[i].Count > p.Ops[j].Count })
	sort.SliceStable(p.Processes, func(i, j int) bool {
		return p.Processes[i].Activations > p.Processes[j].Activations
	})
}

// Hottest returns the most-activated process, or a zero ProcessStat
// when the profile is empty.
func (p *EngineProfile) Hottest() ProcessStat {
	var best ProcessStat
	for _, ps := range p.Processes {
		if ps.Activations > best.Activations {
			best = ps
		}
	}
	return best
}

// String renders a compact multi-line summary for diag output.
func (p *EngineProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine profile: %d instructions over %d settles", p.Instructions, p.Settles)
	if p.FixpointGroups > 0 {
		fmt.Fprintf(&b, "; %d fixpoint groups, %d iters (max %d)",
			p.FixpointGroups, p.FixpointIters, p.MaxGroupIters)
	}
	b.WriteByte('\n')
	if len(p.Ops) > 0 {
		b.WriteString("  top ops:")
		for i, oc := range p.Ops {
			if i == 5 {
				break
			}
			fmt.Fprintf(&b, " %s=%d", oc.Op, oc.Count)
		}
		b.WriteByte('\n')
	}
	if h := p.Hottest(); h.Activations > 0 {
		fmt.Fprintf(&b, "  hottest process: %s", h.Kind)
		if h.Line > 0 {
			fmt.Fprintf(&b, " (line %d)", h.Line)
		}
		fmt.Fprintf(&b, ", %d activations\n", h.Activations)
	}
	return b.String()
}
