// Package wave is the simulation-layer observability toolkit: an
// observer interface the simulator facade samples after every settle,
// with three consumers built on top of it — a VCD recorder that keeps a
// bounded waveform window around a point of interest (the first
// testbench mismatch), toggle/activity coverage folded into a compact
// signature the fuzzer uses for corpus guidance, and a compiled-engine
// execution profile (opcode histogram, fixpoint iteration counts,
// hottest-process attribution).
//
// The package is a leaf: it depends only on internal/bitvec, so
// internal/sim can import it without a cycle. Observation is strictly
// opt-in — a simulator with no observer attached takes a single nil
// check per settle and allocates nothing, which the engine's
// steady-state AllocsPerRun guard pins.
package wave

import "repro/internal/bitvec"

// Signal describes one observed signal: its design name and bit width.
type Signal struct {
	Name  string
	Width int
}

// Observer consumes post-settle snapshots from a running simulator.
//
// Init is called once when the observer is attached, with the module
// name and the signals that every subsequent Sample covers, in a fixed
// order. Sample receives one snapshot per settle: t is a monotonically
// increasing observation index (three per clock cycle under ClockPulse:
// pre-edge, post-rise, post-fall), and vals[i] is signals[i]'s current
// value. The vectors alias live simulator storage and are only valid
// during the call; observers that retain values must copy them.
type Observer interface {
	Init(module string, signals []Signal)
	Sample(t uint64, vals []bitvec.Vec)
}

// multi fans samples out to several observers in order.
type multi struct{ obs []Observer }

func (m *multi) Init(module string, signals []Signal) {
	for _, o := range m.obs {
		o.Init(module, signals)
	}
}

func (m *multi) Sample(t uint64, vals []bitvec.Vec) {
	for _, o := range m.obs {
		o.Sample(t, vals)
	}
}

// Multi combines observers into one; nil entries are dropped. Returns
// nil when nothing remains (so the caller's nil fast path stays intact)
// and the observer itself when exactly one remains.
func Multi(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multi{obs: kept}
}
