package wave

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
)

func vecs(vals ...uint64) []bitvec.Vec {
	out := make([]bitvec.Vec, len(vals))
	for i, v := range vals {
		out[i] = bitvec.FromUint64(4, v)
	}
	return out
}

func bit(b uint64) bitvec.Vec { return bitvec.FromUint64(1, b) }

// TestVCDGolden pins the exact VCD text for a tiny two-signal trace:
// a full $dumpvars at the first sample, then change-only dumps.
func TestVCDGolden(t *testing.T) {
	r := NewRecorder(0)
	r.Init("top", []Signal{{Name: "clk", Width: 1}, {Name: "q", Width: 4}})
	r.Sample(0, []bitvec.Vec{bit(0), bitvec.FromUint64(4, 0)})
	r.Sample(1, []bitvec.Vec{bit(1), bitvec.FromUint64(4, 5)})
	r.Sample(2, []bitvec.Vec{bit(0), bitvec.FromUint64(4, 5)})

	want := strings.Join([]string{
		"$timescale 1ns $end",
		"$scope module top $end",
		"$var wire 1 ! clk $end",
		"$var wire 4 \" q [3:0] $end",
		"$upscope $end",
		"$enddefinitions $end",
		"#0",
		"$dumpvars",
		"0!",
		"b0 \"",
		"$end",
		"#1",
		"1!",
		"b101 \"",
		"#2",
		"0!",
		"",
	}, "\n")
	if got := r.VCD(); got != want {
		t.Errorf("VCD mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRecorderWindow checks the bounded mode: last W pre-mark samples
// plus W post-mark samples, then the recorder goes quiet.
func TestRecorderWindow(t *testing.T) {
	r := NewRecorder(3)
	r.Init("m", []Signal{{Name: "x", Width: 4}})
	for i := uint64(0); i < 10; i++ {
		r.Sample(i, vecs(i))
	}
	r.Mark()
	for i := uint64(10); i < 20; i++ {
		r.Sample(i, vecs(i%16))
	}
	if got := r.Samples(); got != 6 {
		t.Fatalf("Samples() = %d, want 6 (3 pre + 3 post)", got)
	}
	vcd := r.VCD()
	if !strings.Contains(vcd, "$comment window around observation #9") {
		t.Errorf("missing mark comment in:\n%s", vcd)
	}
	// Oldest retained sample is #7, newest is #12.
	if !strings.Contains(vcd, "#7\n") || strings.Contains(vcd, "#6\n") {
		t.Errorf("window start wrong:\n%s", vcd)
	}
	if !strings.Contains(vcd, "#12\n") || strings.Contains(vcd, "#13\n") {
		t.Errorf("window end wrong:\n%s", vcd)
	}
}

func TestIDCode(t *testing.T) {
	if idCode(0) != "!" || idCode(93) != "~" {
		t.Errorf("single-char codes wrong: %q %q", idCode(0), idCode(93))
	}
	if idCode(94) != "!!" {
		t.Errorf("idCode(94) = %q, want \"!!\"", idCode(94))
	}
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("idCode collision at %d: %q", i, c)
		}
		seen[c] = true
	}
}

func TestCoverageToggles(t *testing.T) {
	c := NewCoverage()
	c.Init("m", []Signal{{Name: "a", Width: 4}})
	// First sample only seeds prev; then 0 -> 0b0011 (two rises),
	// 0b0011 -> 0b0001 (one fall).
	c.Sample(0, vecs(0))
	c.Sample(1, vecs(3))
	c.Sample(2, vecs(1))
	c.AddActivations([]uint64{5, 0})

	st := c.Stats()
	if st.Bits != 4 || st.PointsTotal != 8 {
		t.Fatalf("bits=%d total=%d, want 4/8", st.Bits, st.PointsTotal)
	}
	// rose: bits 0,1; fell: bit 1 => 3 points, 2 distinct bits.
	if st.PointsCovered != 3 || st.BitsToggled != 2 {
		t.Errorf("covered=%d toggled=%d, want 3/2", st.PointsCovered, st.BitsToggled)
	}
	if st.Toggles != 3 {
		t.Errorf("toggles=%d, want 3", st.Toggles)
	}
	if st.Processes != 2 || st.ProcessesActive != 1 {
		t.Errorf("procs=%d active=%d, want 2/1", st.Processes, st.ProcessesActive)
	}
	if f := st.Fraction(); f <= 0 || f >= 1 {
		t.Errorf("fraction=%v out of (0,1)", f)
	}
	if !strings.Contains(st.String(), "toggle points") {
		t.Errorf("Stats.String() = %q", st.String())
	}
}

func TestSignatureUnion(t *testing.T) {
	c := NewCoverage()
	c.Init("m", []Signal{{Name: "a", Width: 4}})
	c.Sample(0, vecs(0))
	c.Sample(1, vecs(3))
	sig := c.Signature()
	if sig.Empty() || sig.Count() != 2 {
		t.Fatalf("signature count=%d, want 2 rise points", sig.Count())
	}

	var corpus Signature
	if !corpus.Union(sig) {
		t.Error("first union should grow")
	}
	if corpus.Union(sig) {
		t.Error("repeat union should not grow")
	}
	if sig.AddsTo(&corpus) {
		t.Error("AddsTo should be false once merged")
	}

	// A fall on the same bit is a distinct point.
	c.Sample(2, vecs(1))
	sig2 := c.Signature()
	if !sig2.AddsTo(&corpus) {
		t.Error("new direction should add coverage")
	}
	if !corpus.Union(sig2) {
		t.Error("union with new direction should grow")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of nothing should be nil")
	}
	c := NewCoverage()
	if Multi(nil, c) != Observer(c) {
		t.Error("Multi of one should return it unwrapped")
	}
	r := NewRecorder(0)
	m := Multi(c, r)
	m.Init("m", []Signal{{Name: "a", Width: 4}})
	m.Sample(0, vecs(0))
	m.Sample(1, vecs(3))
	if r.Samples() != 2 {
		t.Errorf("recorder samples=%d, want 2", r.Samples())
	}
	if st := c.Stats(); st.Toggles != 2 {
		t.Errorf("coverage toggles=%d, want 2", st.Toggles)
	}
}

func TestEngineProfileRender(t *testing.T) {
	p := &EngineProfile{
		Instructions:   100,
		Settles:        10,
		FixpointGroups: 1,
		FixpointIters:  4,
		MaxGroupIters:  2,
		Ops:            []OpCount{{Op: "copy", Count: 60}, {Op: "add", Count: 40}},
		Processes: []ProcessStat{
			{Kind: "assign", Line: 3, Activations: 7},
			{Kind: "seq", Line: 9, Activations: 12},
		},
	}
	p.Sort()
	if p.Processes[0].Kind != "seq" {
		t.Errorf("Sort should order by activations, got %+v", p.Processes)
	}
	if h := p.Hottest(); h.Kind != "seq" || h.Activations != 12 {
		t.Errorf("Hottest() = %+v", h)
	}
	s := p.String()
	for _, want := range []string{"100 instructions", "fixpoint", "copy=60", "hottest process: seq (line 9)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
