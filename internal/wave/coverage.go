package wave

import (
	"fmt"

	"repro/internal/bitvec"
)

// Coverage is an Observer accumulating toggle/activity coverage over a
// run: per-signal sticky masks of bits seen rising (0→1) and falling
// (1→0), total toggle-event counts, and — folded in separately via
// AddActivations — per-process activation counts. The whole run merges
// into a compact Signature for corpus guidance and into Stats for
// reporting.
type Coverage struct {
	module  string
	signals []Signal
	// prev holds the previous sample per signal; the first sample only
	// initializes it (power-on values are state, not toggles).
	prev  []bitvec.Vec
	have  bool
	rose  []bitvec.Vec // sticky per-bit 0→1 masks
	fell  []bitvec.Vec // sticky per-bit 1→0 masks
	diff  []bitvec.Vec // scratch: bits that changed this sample
	tmp   []bitvec.Vec // scratch: direction-filtered change bits
	tog   []uint64     // per-signal toggle events (changed bits summed)
	procs []uint64     // per-process activations (AddActivations)

	samples uint64
}

// NewCoverage builds an empty coverage accumulator.
func NewCoverage() *Coverage { return &Coverage{} }

// Init implements Observer.
func (c *Coverage) Init(module string, signals []Signal) {
	c.module = module
	c.signals = signals
	n := len(signals)
	c.prev = make([]bitvec.Vec, n)
	c.rose = make([]bitvec.Vec, n)
	c.fell = make([]bitvec.Vec, n)
	c.diff = make([]bitvec.Vec, n)
	c.tmp = make([]bitvec.Vec, n)
	c.tog = make([]uint64, n)
	for i, sig := range signals {
		c.prev[i] = bitvec.New(sig.Width)
		c.rose[i] = bitvec.New(sig.Width)
		c.fell[i] = bitvec.New(sig.Width)
		c.diff[i] = bitvec.New(sig.Width)
		c.tmp[i] = bitvec.New(sig.Width)
	}
	c.have = false
	c.samples = 0
}

// Sample implements Observer: diff each signal against the previous
// sample and fold rising/falling bits into the sticky masks.
func (c *Coverage) Sample(t uint64, vals []bitvec.Vec) {
	c.samples++
	if !c.have {
		for i := range vals {
			c.prev[i].CopyResize(vals[i])
		}
		c.have = true
		return
	}
	for i := range vals {
		c.diff[i].XorOf(vals[i], c.prev[i])
		if c.diff[i].IsZero() {
			continue
		}
		c.tog[i] += uint64(c.diff[i].PopCount())
		c.tmp[i].AndOf(c.diff[i], vals[i]) // changed and now 1: rose
		c.rose[i].OrOf(c.rose[i], c.tmp[i])
		c.tmp[i].AndOf(c.diff[i], c.prev[i]) // changed and was 1: fell
		c.fell[i].OrOf(c.fell[i], c.tmp[i])
		c.prev[i].CopyResize(vals[i])
	}
}

// AddActivations folds per-process activation counts (from
// sim.Simulator.Activations) into the coverage; repeated calls
// accumulate element-wise.
func (c *Coverage) AddActivations(acts []uint64) {
	if len(acts) == 0 {
		return
	}
	if len(c.procs) < len(acts) {
		grown := make([]uint64, len(acts))
		copy(grown, c.procs)
		c.procs = grown
	}
	for i, a := range acts {
		c.procs[i] += a
	}
}

// Stats summarizes a coverage accumulation for tables and /v1/stats.
type Stats struct {
	Module  string
	Signals int
	// Bits is the total observed signal bits; each contributes two
	// coverage points (seen rising, seen falling).
	Bits int
	// BitsToggled counts bits seen changing in at least one direction.
	BitsToggled int
	// PointsCovered / PointsTotal are the toggle-point tallies
	// (PointsTotal = 2×Bits) plus nothing else — process activity is
	// reported separately so the two planes stay attributable.
	PointsCovered int
	PointsTotal   int
	// Processes / ProcessesActive count design processes (continuous
	// assigns and always blocks) and how many executed at least once.
	Processes       int
	ProcessesActive int
	// Toggles is the total number of bit-change events observed.
	Toggles uint64
	// Samples is the number of post-settle snapshots folded in.
	Samples uint64
}

// Fraction is the single-number coverage figure: covered points
// (toggle directions seen plus processes activated) over all points.
// Zero when nothing was observable.
func (s Stats) Fraction() float64 {
	total := s.PointsTotal + s.Processes
	if total == 0 {
		return 0
	}
	return float64(s.PointsCovered+s.ProcessesActive) / float64(total)
}

func (s Stats) String() string {
	return fmt.Sprintf("coverage %.1f%%: %d/%d toggle points (%d/%d bits), %d/%d processes, %d toggles over %d samples",
		100*s.Fraction(), s.PointsCovered, s.PointsTotal, s.BitsToggled, s.Bits,
		s.ProcessesActive, s.Processes, s.Toggles, s.Samples)
}

// Stats computes the current summary.
func (c *Coverage) Stats() Stats {
	st := Stats{Module: c.module, Signals: len(c.signals), Samples: c.samples}
	for i, sig := range c.signals {
		st.Bits += sig.Width
		st.Toggles += c.tog[i]
		r, f := c.rose[i].PopCount(), c.fell[i].PopCount()
		st.PointsCovered += r + f
		// Bits toggled in either direction: |rose ∪ fell|.
		c.tmp[i].OrOf(c.rose[i], c.fell[i])
		st.BitsToggled += c.tmp[i].PopCount()
	}
	st.PointsTotal = 2 * st.Bits
	st.Processes = len(c.procs)
	for _, a := range c.procs {
		if a > 0 {
			st.ProcessesActive++
		}
	}
	return st
}

// SignatureWords sizes the coverage signature: a fixed 4096-bit set so
// signatures from different designs share one space (points are hashed
// by signal name, bit index, and direction — the corpus-guidance trick
// coverage-guided fuzzers use, where rare collisions only cost a
// little guidance, never correctness).
const SignatureWords = 64

// Signature is a fixed-size coverage bitset. The zero value is empty
// and ready to use.
type Signature struct {
	words [SignatureWords]uint64
}

// fnv-1a, inlined so building signatures stays dependency-free.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (s *Signature) addKey(h uint64) {
	bit := h % (SignatureWords * 64)
	s.words[bit/64] |= 1 << (bit % 64)
}

func hashString(h uint64, str string) uint64 {
	for i := 0; i < len(str); i++ {
		h ^= uint64(str[i])
		h *= fnvPrime
	}
	return h
}

func hashUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

// Count returns the number of set coverage bits.
func (s *Signature) Count() int {
	n := 0
	for _, w := range s.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Empty reports whether no coverage point is set.
func (s *Signature) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union folds o into s and reports whether s gained any new bit — the
// corpus-admission test for coverage-guided fuzzing.
func (s *Signature) Union(o *Signature) bool {
	grew := false
	for i, w := range o.words {
		if w&^s.words[i] != 0 {
			grew = true
		}
		s.words[i] |= w
	}
	return grew
}

// AddsTo reports whether s has at least one bit absent from base,
// without mutating either.
func (s *Signature) AddsTo(base *Signature) bool {
	for i, w := range s.words {
		if w&^base.words[i] != 0 {
			return true
		}
	}
	return false
}

// Signature hashes the accumulated coverage into the fixed point space:
// one point per (signal, bit, direction) seen toggling and one per
// process that activated.
func (c *Coverage) Signature() *Signature {
	sig := &Signature{}
	for i, s := range c.signals {
		hname := hashString(fnvOffset, s.Name)
		for b := 0; b < s.Width; b++ {
			if c.rose[i].Bit(b) {
				sig.addKey(hashUint(hashString(hname, "r"), uint64(b)))
			}
			if c.fell[i].Bit(b) {
				sig.addKey(hashUint(hashString(hname, "f"), uint64(b)))
			}
		}
	}
	for pi, a := range c.procs {
		if a > 0 {
			sig.addKey(hashUint(hashString(fnvOffset, "proc"), uint64(pi)))
		}
	}
	return sig
}
