package trace

import "context"

// spanKey is the context key for span propagation through APIs that
// already carry a context (pipeline fix functions).
type spanKey struct{}

// NewContext returns ctx carrying sp. A nil span is stored as-is;
// FromContext then returns nil and downstream instrumentation no-ops.
func NewContext(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
