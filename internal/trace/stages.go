// Stage-latency aggregation: fold finished traces' span durations into
// per-stage histograms keyed by span name, and render the attribution
// table loadgen and benchmark print. Wired as a Collector finish hook,
// so the data plane never touches the aggregate — spans still open when
// the root ends (a deadline-expired request's background run) are
// skipped rather than recorded with a bogus duration.
package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// StageAgg accumulates span durations into one histogram per span name.
type StageAgg struct {
	mu    sync.Mutex
	hists map[string]*metrics.Histogram
	sums  map[string]float64
}

// NewStageAgg builds an empty aggregate.
func NewStageAgg() *StageAgg {
	return &StageAgg{hists: map[string]*metrics.Histogram{}, sums: map[string]float64{}}
}

// Observe folds one finished trace in — the Collector.SetOnFinish hook.
func (a *StageAgg) Observe(t *Trace) {
	if a == nil || t == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	t.Walk(func(name string, dur time.Duration, ended bool) {
		if !ended {
			return
		}
		h, ok := a.hists[name]
		if !ok {
			h = metrics.NewLatencyHistogram()
			a.hists[name] = h
		}
		ms := float64(dur) / float64(time.Millisecond)
		h.Observe(ms)
		a.sums[name] += ms
	})
}

// Snapshot returns per-stage histogram snapshots, keyed by span name.
func (a *StageAgg) Snapshot() map[string]metrics.HistogramSnapshot {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]metrics.HistogramSnapshot, len(a.hists))
	for name, h := range a.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// OrderedStages is a stage-snapshot map that marshals to JSON in
// pipeline order (StageNames) instead of Go's alphabetical map order,
// so the /v1/stats "stages" object reads top-to-bottom like the
// attribution table. Decoding uses the ordinary map rules.
type OrderedStages map[string]metrics.HistogramSnapshot

// MarshalJSON implements json.Marshaler with deterministic key order.
func (o OrderedStages) MarshalJSON() ([]byte, error) {
	if o == nil {
		return []byte("null"), nil
	}
	var b bytes.Buffer
	b.WriteByte('{')
	for i, name := range StageNames(o) {
		if i > 0 {
			b.WriteByte(',')
		}
		k, err := json.Marshal(name)
		if err != nil {
			return nil, err
		}
		b.Write(k)
		b.WriteByte(':')
		v, err := json.Marshal(o[name])
		if err != nil {
			return nil, err
		}
		b.Write(v)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// stageOrder is the span taxonomy in pipeline order; stages outside it
// sort after, alphabetically. Keeping the table in request-flow order
// makes the attribution readable top to bottom.
var stageOrder = []string{
	"fix", "lint", "job", "admission", "queue", "wait", "run",
	"agent", "iteration", "compile", "rag", "llm", "sim",
}

func stageRank(name string) int {
	for i, s := range stageOrder {
		if s == name {
			return i
		}
	}
	return len(stageOrder)
}

// StageNames returns the snapshot's stage names in pipeline order
// (stageOrder first, unknown names after, alphabetically) — the stable
// iteration order /metrics and the tables share.
func StageNames(stages map[string]metrics.HistogramSnapshot) []string {
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, rj := stageRank(names[i]), stageRank(names[j])
		if ri != rj {
			return ri < rj
		}
		return names[i] < names[j]
	})
	return names
}

// RenderStageTable formats per-stage latency attribution (count, p50,
// p90, p99, max, and total wall-clock) from histogram snapshots — the
// table loadgen -stages and benchmark -stages print. Returns "" when
// there is nothing to report.
func RenderStageTable(stages map[string]metrics.HistogramSnapshot) string {
	if len(stages) == 0 {
		return ""
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		if stages[name].Count > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Slice(names, func(i, j int) bool {
		ri, rj := stageRank(names[i]), stageRank(names[j])
		if ri != rj {
			return ri < rj
		}
		return names[i] < names[j]
	})
	var b strings.Builder
	b.WriteString("Stage latency attribution (ms per span):\n")
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %10s %10s %12s\n",
		"stage", "count", "p50", "p90", "p99", "max", "total ms")
	for _, name := range names {
		s := stages[name]
		fmt.Fprintf(&b, "%-12s %8d %10.2f %10.2f %10.2f %10.2f %12.1f\n",
			name, s.Count, s.P50, s.P90, s.P99, s.Max, s.Sum)
	}
	return b.String()
}
