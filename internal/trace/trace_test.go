package trace

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	c := NewCollector(8, 4, time.Hour)
	root := c.Start("fix")
	if root == nil {
		t.Fatal("Start returned nil on a live collector")
	}
	root.SetStr("request_id", "r-1")
	q := root.Child("queue")
	q.End()
	run := root.Child("run")
	run.SetInt("batch_size", 3)
	cmp := run.Child("compile")
	cmp.SetBool("ok", true)
	cmp.End()
	run.End()
	root.End()

	tr, ok := c.Get(root.TraceID())
	if !ok {
		t.Fatalf("finished trace %q not retrievable", root.TraceID())
	}
	j := tr.JSON()
	if j.Spans != 4 {
		t.Fatalf("span count = %d, want 4", j.Spans)
	}
	if j.Root.Name != "fix" || j.Root.Attrs["request_id"] != "r-1" {
		t.Fatalf("bad root: %+v", j.Root)
	}
	if len(j.Root.Children) != 2 || j.Root.Children[0].Name != "queue" || j.Root.Children[1].Name != "run" {
		t.Fatalf("bad children: %+v", j.Root.Children)
	}
	runJ := j.Root.Children[1]
	if runJ.Attrs["batch_size"] != int64(3) {
		t.Fatalf("batch_size attr = %v", runJ.Attrs["batch_size"])
	}
	if len(runJ.Children) != 1 || runJ.Children[0].Name != "compile" || runJ.Children[0].Attrs["ok"] != true {
		t.Fatalf("bad compile span: %+v", runJ.Children)
	}
	if !j.Root.Ended || j.DurMS < 0 {
		t.Fatalf("root not ended cleanly: %+v", j)
	}
	// The tree must be JSON-marshalable as served by /v1/trace/{id}.
	if _, err := json.Marshal(j); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestNilCollectorAndSpanAreNoOps(t *testing.T) {
	var c *Collector
	sp := c.Start("fix")
	if sp != nil {
		t.Fatal("nil collector started a non-nil span")
	}
	// Every operation on the nil span chain must be safe.
	child := sp.Child("queue")
	child.SetStr("k", "v")
	child.SetInt("n", 1)
	child.SetBool("b", true)
	child.SetFloat("f", 1.5)
	child.End()
	sp.End()
	if id := sp.TraceID(); id != "" {
		t.Fatalf("nil span TraceID = %q", id)
	}
	if got := c.Summaries(0); got != nil {
		t.Fatalf("nil collector Summaries = %v", got)
	}
	if _, ok := c.Get("t-000001"); ok {
		t.Fatal("nil collector Get returned ok")
	}
	if occ := c.Occupancy(); occ != (Occupancy{}) {
		t.Fatalf("nil collector occupancy = %+v", occ)
	}
}

// TestTraceOffZeroAlloc pins the overhead budget: with tracing disabled
// (nil collector → nil spans) the instrumented hot path must not
// allocate at all. This is the AllocsPerRun gate the acceptance criteria
// name — the compile/sim hot paths stay allocation-free with the no-op
// implementation in place.
func TestTraceOffZeroAlloc(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(200, func() {
		root := c.Start("fix")
		q := root.Child("queue")
		q.End()
		run := root.Child("run")
		run.SetInt("batch_size", 1)
		cmp := run.Child("compile")
		cmp.SetBool("ok", true)
		cmp.SetBool("cache_hit", false)
		cmp.End()
		run.End()
		root.End()
	})
	if allocs != 0 {
		t.Fatalf("trace-off path allocates %v per run, want 0", allocs)
	}
}

func TestRingEvictionAndSlowRetention(t *testing.T) {
	c := NewCollector(4, 2, 30*time.Millisecond)
	slowIDs := make([]string, 0, 3)
	for i := 0; i < 10; i++ {
		root := c.Start("fix")
		if i < 3 {
			// The three slow traces land early so the ring evicts them.
			time.Sleep(40 * time.Millisecond)
			slowIDs = append(slowIDs, root.TraceID())
		}
		root.End()
	}
	occ := c.Occupancy()
	if occ.Ring != 4 || occ.RingCap != 4 {
		t.Fatalf("ring occupancy = %+v", occ)
	}
	if occ.Slow != 2 || occ.SlowCap != 2 {
		t.Fatalf("slow occupancy = %+v", occ)
	}
	if occ.Collected != 10 || occ.Started != 10 {
		t.Fatalf("collected/started = %+v", occ)
	}
	// The first slow trace was displaced by two equally-slow later ones
	// only if they were slower; all three are ~40ms, so the tier holds
	// two of the three. Every retained slow trace must be retrievable
	// even though the ring has long evicted it.
	retained := 0
	for _, id := range slowIDs {
		if _, ok := c.Get(id); ok {
			retained++
		}
	}
	if retained != 2 {
		t.Fatalf("retained %d slow traces, want 2", retained)
	}

	sums := c.Summaries(0)
	if len(sums) != 6 { // 4 ring + 2 slow (no overlap: slow ones are old)
		t.Fatalf("summaries = %d, want 6", len(sums))
	}
	// Newest first within the ring portion.
	for i := 1; i < 4; i++ {
		if sums[i].Start.After(sums[i-1].Start) {
			t.Fatalf("summaries not newest-first: %v before %v", sums[i-1].Start, sums[i].Start)
		}
	}
	slowFlagged := 0
	for _, s := range sums {
		if s.Slow {
			slowFlagged++
		}
	}
	if slowFlagged != 2 {
		t.Fatalf("slow-flagged summaries = %d, want 2", slowFlagged)
	}
	if got := c.Summaries(3); len(got) != 3 {
		t.Fatalf("limited summaries = %d, want 3", len(got))
	}
}

func TestStageAgg(t *testing.T) {
	agg := NewStageAgg()
	c := NewCollector(8, 0, time.Hour)
	c.SetOnFinish(agg.Observe)
	for i := 0; i < 3; i++ {
		root := c.Start("fix")
		cmp := root.Child("compile")
		cmp.End()
		open := root.Child("background") // never ended: must be skipped
		_ = open
		root.End()
	}
	snap := agg.Snapshot()
	if snap["fix"].Count != 3 || snap["compile"].Count != 3 {
		t.Fatalf("stage counts = fix:%d compile:%d, want 3/3", snap["fix"].Count, snap["compile"].Count)
	}
	if _, ok := snap["background"]; ok {
		t.Fatal("unended span was aggregated")
	}
	table := RenderStageTable(snap)
	if table == "" {
		t.Fatal("empty stage table")
	}
	for _, want := range []string{"stage", "fix", "compile", "p50", "p99", "total ms"} {
		if !containsLine(table, want) {
			t.Fatalf("stage table missing %q:\n%s", want, table)
		}
	}
	if RenderStageTable(nil) != "" {
		t.Fatal("nil stages rendered a table")
	}
	var nilAgg *StageAgg
	nilAgg.Observe(nil) // must not panic
	if nilAgg.Snapshot() != nil {
		t.Fatal("nil agg snapshot non-nil")
	}
}

func containsLine(s, sub string) bool {
	return strings.Contains(s, sub)
}

func TestContextPropagation(t *testing.T) {
	c := NewCollector(2, 0, time.Hour)
	root := c.Start("job")
	ctx := NewContext(context.Background(), root)
	if got := FromContext(ctx); got != root {
		t.Fatal("span did not round-trip through context")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("empty context produced a span")
	}
}
