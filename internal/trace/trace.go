// Package trace is the request-tracing layer of the serving spine: a
// lightweight, allocation-disciplined span tree per request, collected
// into a bounded ring of recent traces with separate retention for the
// slowest ones — the per-stage attribution the aggregate counters in
// /v1/stats cannot give. When a /v1/fix request is slow, its trace says
// whether the time went to queueing, the coalescing linger, an agent
// iteration, a compile, the post-fix simulation check, or retrieval.
//
// The design mirrors the staged-pipeline monitoring of the DAQ systems
// in PAPERS.md: every stage of the fan-in/fan-out path is timestamped at
// its boundaries, and the monitoring plane (collection, aggregation,
// exposition) never contends with the data plane beyond one short mutex
// per span operation.
//
// Tracing off is the nil value. A nil *Collector starts nil *Spans, and
// every Span method is a nil-receiver no-op, so instrumented code holds
// plain *Span fields and pays one predictable branch — zero allocations,
// zero locks — when tracing is disabled. The tests pin that contract
// with testing.AllocsPerRun.
//
// Concurrency: one trace's spans may be created and ended from several
// goroutines (the HTTP handler admits and waits while a pipeline worker
// runs the agent), so all tree mutations and reads go through the
// owning Trace's mutex. Spans may still be appended after the root ends
// (a deadline-expired request's background run); Get renders whatever
// the tree holds at read time.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Val is a string, int64, bool, or float64 —
// small scalar facts (cache_hit, iteration number, batch size), never
// payloads.
type Attr struct {
	Key string
	Val any
}

// Span is one timed operation in a trace tree. The zero value is not
// usable; spans are created by Collector.Start (roots) and Span.Child.
// All methods are safe on a nil receiver and do nothing — that is the
// tracing-off fast path.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
	t        *Trace
}

// Child starts a nested span. Returns nil when s is nil, so call chains
// stay no-ops with tracing off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), t: s.t}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// End stamps the span's duration (first call wins). Ending a root span
// hands the finished trace to its collector.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	isRoot := t.root == s
	t.mu.Unlock()
	if isRoot {
		t.c.collect(t)
	}
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, val string) { s.set(key, val) }

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, val int64) { s.set(key, val) }

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, val bool) { s.set(key, val) }

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, val float64) { s.set(key, val) }

func (s *Span) set(key string, val any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.t.mu.Unlock()
}

// TraceID returns the owning trace's identifier ("" on a nil span) —
// what the server echoes as the request ID header when tracing is on.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.t.id
}

// Trace is one request's span tree plus its collection bookkeeping.
type Trace struct {
	mu    sync.Mutex
	id    string
	start time.Time
	root  *Span
	c     *Collector
}

// ID returns the trace identifier.
func (t *Trace) ID() string { return t.id }

// Duration returns the root span's duration (zero until the root ends).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.dur
}

// Walk visits every span depth-first under the trace mutex: name,
// duration, and whether the span has ended. Attribute slices are not
// exposed to keep the callback allocation-free; use JSON for full dumps.
func (t *Trace) Walk(fn func(name string, dur time.Duration, ended bool)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var rec func(s *Span)
	rec = func(s *Span) {
		fn(s.name, s.dur, s.ended)
		for _, c := range s.children {
			rec(c)
		}
	}
	rec(t.root)
}

// SpanJSON is one span rendered for the /v1/trace/{id} endpoint.
type SpanJSON struct {
	Name string `json:"name"`
	// StartMS is the span's start offset from the trace start.
	StartMS float64 `json:"start_ms"`
	// DurMS is zero for spans still open at render time.
	DurMS    float64        `json:"dur_ms"`
	Ended    bool           `json:"ended"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanJSON     `json:"children,omitempty"`
}

// TraceJSON is the /v1/trace/{id} response body.
type TraceJSON struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	DurMS float64   `json:"dur_ms"`
	Spans int       `json:"spans"`
	Root  SpanJSON  `json:"root"`
}

// JSON renders the tree as it stands (late spans from a background run
// appear once they are added).
func (t *Trace) JSON() TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	var rec func(s *Span) SpanJSON
	rec = func(s *Span) SpanJSON {
		n++
		j := SpanJSON{
			Name:    s.name,
			StartMS: float64(s.start.Sub(t.start)) / float64(time.Millisecond),
			DurMS:   float64(s.dur) / float64(time.Millisecond),
			Ended:   s.ended,
		}
		if len(s.attrs) > 0 {
			j.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				j.Attrs[a.Key] = a.Val
			}
		}
		for _, c := range s.children {
			j.Children = append(j.Children, rec(c))
		}
		return j
	}
	root := rec(t.root)
	return TraceJSON{ID: t.id, Start: t.start, DurMS: root.DurMS, Spans: n, Root: root}
}

// Summary is one row of the /v1/trace listing.
type Summary struct {
	ID    string    `json:"id"`
	Root  string    `json:"root"`
	Start time.Time `json:"start"`
	DurMS float64   `json:"dur_ms"`
	Spans int       `json:"spans"`
	// Slow marks traces held by the slow-retention tier.
	Slow bool `json:"slow,omitempty"`
}

// Occupancy reports the collector's buffer state, served by /v1/healthz.
type Occupancy struct {
	Ring      int    `json:"ring"`
	RingCap   int    `json:"ring_cap"`
	Slow      int    `json:"slow"`
	SlowCap   int    `json:"slow_cap"`
	Collected uint64 `json:"collected"`
	// Started counts traces begun, including ones still open; Started -
	// Collected is the in-flight trace count.
	Started uint64 `json:"started"`
}

// Collector owns the bounded buffers of finished traces. A nil
// *Collector is the TraceOff implementation: Start returns nil and every
// downstream span operation is a no-op.
type Collector struct {
	mu   sync.Mutex
	ring []*Trace // newest at (next-1+len)%len once full
	next int
	// slow retains the slowest traces at or over threshold, kept sorted
	// ascending by duration so the minimum is always slot 0.
	slow      []*Trace
	slowCap   int
	threshold time.Duration
	collected uint64
	seq       atomic.Uint64
	onFinish  func(*Trace)
}

// Collector defaults.
const (
	DefaultRing          = 256
	DefaultSlowKeep      = 32
	DefaultSlowThreshold = 500 * time.Millisecond
)

// NewCollector builds a collector retaining the last ringSize finished
// traces plus the slowKeep slowest traces whose duration reached
// slowThreshold (so one slow request survives any burst of fast ones).
// Zero values select the defaults; slowKeep < 0 disables slow retention.
func NewCollector(ringSize, slowKeep int, slowThreshold time.Duration) *Collector {
	if ringSize <= 0 {
		ringSize = DefaultRing
	}
	if slowKeep == 0 {
		slowKeep = DefaultSlowKeep
	}
	if slowKeep < 0 {
		slowKeep = 0
	}
	if slowThreshold <= 0 {
		slowThreshold = DefaultSlowThreshold
	}
	return &Collector{
		ring:      make([]*Trace, 0, ringSize),
		slowCap:   slowKeep,
		threshold: slowThreshold,
	}
}

// SetOnFinish registers a hook called with every finished trace (after
// it is buffered) — the seam the server's stage-latency histograms hang
// from. Set before serving traffic; not synchronized with collect.
func (c *Collector) SetOnFinish(fn func(*Trace)) {
	if c == nil {
		return
	}
	c.onFinish = fn
}

// Start begins a new trace and returns its root span, or nil when c is
// nil (tracing off).
func (c *Collector) Start(name string) *Span {
	if c == nil {
		return nil
	}
	t := &Trace{
		id:    fmt.Sprintf("t-%06d", c.seq.Add(1)),
		start: time.Now(),
		c:     c,
	}
	t.root = &Span{name: name, start: t.start, t: t}
	return t.root
}

// collect buffers a finished trace and fires the finish hook.
func (c *Collector) collect(t *Trace) {
	dur := t.Duration()
	c.mu.Lock()
	c.collected++
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, t)
	} else {
		c.ring[c.next] = t
		c.next = (c.next + 1) % cap(c.ring)
	}
	if c.slowCap > 0 && dur >= c.threshold {
		if len(c.slow) < c.slowCap {
			c.slow = append(c.slow, t)
			sort.Slice(c.slow, func(i, j int) bool { return c.slow[i].Duration() < c.slow[j].Duration() })
		} else if dur > c.slow[0].Duration() {
			c.slow[0] = t
			sort.Slice(c.slow, func(i, j int) bool { return c.slow[i].Duration() < c.slow[j].Duration() })
		}
	}
	c.mu.Unlock()
	if c.onFinish != nil {
		c.onFinish(t)
	}
}

// Get returns a buffered trace by ID (ring first, then slow retention).
func (c *Collector) Get(id string) (*Trace, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.ring {
		if t.id == id {
			return t, true
		}
	}
	for _, t := range c.slow {
		if t.id == id {
			return t, true
		}
	}
	return nil, false
}

// Summaries lists buffered traces, newest first, slow-retained traces
// included (deduplicated) and flagged. limit <= 0 means everything.
func (c *Collector) Summaries(limit int) []Summary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	ring := make([]*Trace, len(c.ring))
	// Reorder the ring newest-first: entries before next are older.
	for i := range c.ring {
		ring[i] = c.ring[(c.next+len(c.ring)-1-i+len(c.ring))%len(c.ring)]
	}
	slow := append([]*Trace(nil), c.slow...)
	c.mu.Unlock()

	inRing := make(map[string]bool, len(ring))
	isSlow := make(map[string]bool, len(slow))
	for _, t := range slow {
		isSlow[t.ID()] = true
	}
	out := make([]Summary, 0, len(ring)+len(slow))
	add := func(t *Trace) {
		j := t.JSON()
		out = append(out, Summary{
			ID: j.ID, Root: j.Root.Name, Start: j.Start, DurMS: j.DurMS,
			Spans: j.Spans, Slow: isSlow[j.ID],
		})
	}
	for _, t := range ring {
		inRing[t.ID()] = true
		add(t)
	}
	// Slow traces evicted from the ring still appear, after it (they are
	// by definition older than everything the ring holds), slowest first.
	for i := len(slow) - 1; i >= 0; i-- {
		if !inRing[slow[i].ID()] {
			add(slow[i])
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Occupancy snapshots the buffer state.
func (c *Collector) Occupancy() Occupancy {
	if c == nil {
		return Occupancy{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Occupancy{
		Ring:      len(c.ring),
		RingCap:   cap(c.ring),
		Slow:      len(c.slow),
		SlowCap:   c.slowCap,
		Collected: c.collected,
		Started:   c.seq.Load(),
	}
}
