// Package curate builds the VerilogEval-syntax debugging dataset the way
// §3.4 describes: sample erroneous implementations from the benchmark
// problems, filter (extract code from markdown, validate module
// statements, drop empties and prose), then cluster with DBSCAN over
// Jaccard distance and keep representative examples. The paper lands on
// 212 erroneous implementations; so does this pipeline.
package curate

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/dataset"
	"repro/internal/fixer"
	"repro/internal/inject"
	"repro/internal/llm"
)

// TargetSize is the paper's dataset size (abstract and §3.4).
const TargetSize = 212

// Entry is one curated erroneous implementation.
type Entry struct {
	// ProblemID names the source benchmark problem.
	ProblemID string
	// Suite is the problem's original suite.
	Suite dataset.Suite
	// Description is the problem prompt.
	Description string
	// Code is the erroneous implementation (post-filtering).
	Code string
	// Mutations is the ground-truth error record.
	Mutations []inject.Mutation
	// LogicOK is true when the code is functionally correct underneath
	// its syntax errors.
	LogicOK bool
	// SampleSeed is a stable per-entry seed for the simulated model's
	// capability rolls.
	SampleSeed int64
}

// Options controls the pipeline.
type Options struct {
	// Seed drives all sampling.
	Seed int64
	// Oversample is how many raw samples to draw per problem before
	// filtering (default 6).
	Oversample int
	// Eps is the DBSCAN radius in Jaccard distance (default 0.35).
	Eps float64
	// MinPts is the DBSCAN density threshold (default 2).
	MinPts int
	// Target is the final dataset size (default TargetSize).
	Target int
}

func (o Options) withDefaults() Options {
	if o.Oversample == 0 {
		o.Oversample = 6
	}
	if o.Eps == 0 {
		o.Eps = 0.35
	}
	if o.MinPts == 0 {
		o.MinPts = 2
	}
	if o.Target == 0 {
		o.Target = TargetSize
	}
	return o
}

// Stats reports what the pipeline did at each stage.
type Stats struct {
	Sampled        int
	CompileFailing int
	Filtered       int
	Clusters       int
	Final          int
}

// Build runs sampling → filtering → clustering → selection.
func Build(opts Options) ([]Entry, Stats) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	var stats Stats

	// --- sampling: draw syntax-leaning samples from both VerilogEval
	// suites, mirroring the paper's One-shot/ReAct sampling with
	// gpt-3.5-turbo, "retaining only error-inducing samples".
	var raw []Entry
	for _, suite := range []dataset.Suite{dataset.SuiteMachine, dataset.SuiteHuman} {
		for _, p := range dataset.Problems(suite) {
			rates := llm.RatesFor(string(p.Suite), string(p.Difficulty))
			for i := 0; i < opts.Oversample; i++ {
				s := llm.Generate(p.RefSource, rates, rng)
				stats.Sampled++
				if s.Kind != llm.KindSyntaxErr {
					continue
				}
				raw = append(raw, Entry{
					ProblemID:   p.ID,
					Suite:       p.Suite,
					Description: p.Description,
					Code:        s.Code,
					Mutations:   s.Mutations,
					LogicOK:     s.LogicOK,
					SampleSeed:  rng.Int63(),
				})
			}
		}
	}

	// --- filtering: markdown extraction, module validation, dedup,
	// confirm the sample actually fails compilation.
	seen := map[string]bool{}
	var filtered []Entry
	for _, e := range raw {
		code := fixer.Fix(e.Code).Code
		if !validModule(code) {
			continue
		}
		if _, design, _ := compiler.Frontend(code); design != nil {
			continue // fixer alone repaired it: not an interesting sample
		}
		stats.CompileFailing++
		key := strings.Join(strings.Fields(code), " ")
		if seen[key] {
			continue
		}
		seen[key] = true
		e.Code = code
		filtered = append(filtered, e)
	}
	stats.Filtered = len(filtered)

	// --- clustering: DBSCAN over Jaccard distance on token shingles,
	// then keep cluster representatives plus noise points.
	shingles := make([]map[string]struct{}, len(filtered))
	for i, e := range filtered {
		shingles[i] = cluster.Shingles(e.Code, 4)
	}
	dist := func(i, j int) float64 { return cluster.JaccardDistance(shingles[i], shingles[j]) }
	labels := cluster.DBSCAN(len(filtered), dist, opts.Eps, opts.MinPts)
	maxLabel := -1
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	stats.Clusters = maxLabel + 1
	repIdx := cluster.Representatives(labels, dist)

	selected := make([]Entry, 0, len(repIdx))
	for _, i := range repIdx {
		selected = append(selected, filtered[i])
	}
	// Deterministic order, then trim or top up to the target size.
	sort.SliceStable(selected, func(i, j int) bool {
		if selected[i].ProblemID != selected[j].ProblemID {
			return selected[i].ProblemID < selected[j].ProblemID
		}
		return selected[i].Code < selected[j].Code
	})
	if len(selected) > opts.Target {
		// Spread the trim across the list to keep problem diversity.
		step := float64(len(selected)) / float64(opts.Target)
		var trimmed []Entry
		for i := 0; i < opts.Target; i++ {
			trimmed = append(trimmed, selected[int(float64(i)*step)])
		}
		selected = trimmed
	} else if len(selected) < opts.Target {
		// Top up from non-representative filtered samples.
		inSel := map[string]bool{}
		for _, e := range selected {
			inSel[e.Code] = true
		}
		for _, e := range filtered {
			if len(selected) >= opts.Target {
				break
			}
			if !inSel[e.Code] {
				selected = append(selected, e)
				inSel[e.Code] = true
			}
		}
	}
	stats.Final = len(selected)
	return selected, stats
}

func validModule(code string) bool {
	t := strings.TrimSpace(code)
	if !strings.Contains(t, "module") {
		return false
	}
	// Reject empty bodies: a header with no items.
	inner := t
	if idx := strings.Index(inner, ";"); idx >= 0 {
		inner = inner[idx+1:]
	}
	inner = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(inner), "endmodule"))
	return len(strings.Fields(inner)) >= 2
}
