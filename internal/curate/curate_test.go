package curate

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/dataset"
)

func build(t *testing.T) ([]Entry, Stats) {
	t.Helper()
	return Build(Options{Seed: 5})
}

func TestBuildReachesPaperSize(t *testing.T) {
	entries, stats := build(t)
	if len(entries) != TargetSize {
		t.Fatalf("built %d entries, want %d (stats %+v)", len(entries), TargetSize, stats)
	}
	if stats.Final != TargetSize {
		t.Fatalf("stats.Final = %d", stats.Final)
	}
}

func TestEveryEntryFailsCompilation(t *testing.T) {
	entries, _ := build(t)
	for _, e := range entries {
		if _, design, _ := compiler.Frontend(e.Code); design != nil {
			t.Errorf("%s: curated entry compiles:\n%s", e.ProblemID, e.Code)
		}
	}
}

func TestEntriesCarryGroundTruth(t *testing.T) {
	entries, _ := build(t)
	withMut, logicOK := 0, 0
	for _, e := range entries {
		if len(e.Mutations) > 0 {
			withMut++
		}
		if e.LogicOK {
			logicOK++
		}
		if e.ProblemID == "" || e.Description == "" {
			t.Errorf("entry missing provenance: %+v", e)
		}
		if e.SampleSeed == 0 {
			t.Error("entry missing sample seed")
		}
	}
	if float64(withMut)/float64(len(entries)) < 0.9 {
		t.Errorf("only %d/%d entries have mutation records", withMut, len(entries))
	}
	// Some but not all entries must be logically correct underneath —
	// this mixture is what bounds pass@1 improvement in Table 2.
	if logicOK == 0 || logicOK == len(entries) {
		t.Errorf("LogicOK mixture degenerate: %d/%d", logicOK, len(entries))
	}
}

func TestEntriesAreDeduplicated(t *testing.T) {
	entries, _ := build(t)
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Code] {
			t.Error("duplicate code in curated set")
		}
		seen[e.Code] = true
	}
}

func TestBothSuitesRepresented(t *testing.T) {
	entries, _ := build(t)
	counts := map[dataset.Suite]int{}
	for _, e := range entries {
		counts[e.Suite]++
	}
	if counts[dataset.SuiteMachine] == 0 || counts[dataset.SuiteHuman] == 0 {
		t.Fatalf("suite mix degenerate: %v", counts)
	}
}

func TestStatsMonotone(t *testing.T) {
	_, stats := build(t)
	if stats.Sampled < stats.CompileFailing {
		t.Error("sampled < compile-failing")
	}
	if stats.CompileFailing < stats.Filtered {
		t.Error("compile-failing < filtered (dedup can only shrink)")
	}
	if stats.Clusters <= 0 {
		t.Error("clustering found no clusters")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, _ := Build(Options{Seed: 9})
	b, _ := Build(Options{Seed: 9})
	if len(a) != len(b) {
		t.Fatal("non-deterministic size")
	}
	for i := range a {
		if a[i].Code != b[i].Code {
			t.Fatal("non-deterministic content")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := Build(Options{Seed: 1})
	b, _ := Build(Options{Seed: 2})
	same := 0
	for i := range a {
		if i < len(b) && a[i].Code == b[i].Code {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestCustomTarget(t *testing.T) {
	entries, _ := Build(Options{Seed: 3, Target: 50})
	if len(entries) != 50 {
		t.Fatalf("custom target ignored: %d", len(entries))
	}
}

func TestValidModule(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"module m(input a, output y);\nassign y = a;\nendmodule", true},
		{"module m;\nendmodule", false}, // empty body
		{"not verilog at all", false},
		{"", false},
	}
	for _, c := range cases {
		if got := validModule(c.src); got != c.want {
			t.Errorf("validModule(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}
