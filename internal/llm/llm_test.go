package llm

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/diag"
	"repro/internal/rag"
)

func TestPersonaByName(t *testing.T) {
	for _, name := range []string{"gpt-3.5", "gpt-3.5-turbo", "GPT-4", "gpt4"} {
		if _, ok := PersonaByName(name); !ok {
			t.Errorf("PersonaByName(%q) failed", name)
		}
	}
	if _, ok := PersonaByName("claude"); ok {
		t.Error("unknown persona resolved")
	}
}

func TestPersonaOrdering(t *testing.T) {
	weak, strong := GPT35(), GPT4()
	if weak.DefaultCompetence >= strong.DefaultCompetence {
		t.Error("gpt-4 must have higher base competence")
	}
	if weak.BlindAcuity >= strong.BlindAcuity {
		t.Error("gpt-4 must have higher blind acuity")
	}
	if weak.HallucinationRate <= strong.HallucinationRate {
		t.Error("gpt-3.5 must hallucinate more")
	}
}

// ---------- log analysis ----------

func TestAnalyzeQuartusLog(t *testing.T) {
	log := `Error (10161): Verilog HDL error at top.sv(5): object "clk" is not declared. Verify the object name is correct. File: /tmp/top.sv Line: 5`
	hyps := AnalyzeLog(log)
	if len(hyps) != 1 {
		t.Fatalf("got %d hypotheses", len(hyps))
	}
	h := hyps[0]
	if h.Category != diag.CatUndeclaredIdent || h.Line != 5 || h.Symbol != "clk" {
		t.Fatalf("hypothesis = %+v", h)
	}
	if h.Confidence < 0.9 {
		t.Errorf("quartus confidence %.2f too low", h.Confidence)
	}
}

func TestAnalyzeIVerilogLog(t *testing.T) {
	log := "top.sv:5: error: Unable to bind wire/reg/memory `clk' in `top_module'\n" +
		"top.sv:5: error: Failed to evaluate event expression 'posedge clk'.\n" +
		"2 error(s) during elaboration.\n"
	hyps := AnalyzeLog(log)
	if len(hyps) == 0 {
		t.Fatal("no hypotheses")
	}
	if hyps[0].Category != diag.CatUndeclaredIdent || hyps[0].Symbol != "clk" {
		t.Fatalf("first hypothesis = %+v", hyps[0])
	}
}

func TestAnalyzeGiveUpLogIsNearlyUseless(t *testing.T) {
	log := "top.sv:3: syntax error\ntop.sv:5: syntax error\nI give up.\n"
	hyps := AnalyzeLog(log)
	if len(hyps) > 1 {
		t.Fatalf("give-up log should yield at most one hypothesis, got %d", len(hyps))
	}
	if len(hyps) == 1 && hyps[0].Confidence > 0.3 {
		t.Errorf("give-up confidence %.2f too high", hyps[0].Confidence)
	}
}

func TestAnalyzeSimpleLogYieldsNothing(t *testing.T) {
	if hyps := AnalyzeLog("Correct the syntax error in the code."); len(hyps) != 0 {
		t.Fatalf("Simple feedback must carry no hypotheses, got %v", hyps)
	}
}

func TestQuartusCategoryInversionComplete(t *testing.T) {
	// Every category the Quartus persona can emit must invert back.
	seen := map[diag.Category]bool{}
	for _, c := range quartusCodeToCategory {
		seen[c] = true
	}
	for _, c := range []diag.Category{
		diag.CatUndeclaredIdent, diag.CatIndexOutOfRange, diag.CatInvalidLValue,
		diag.CatAssignToReg, diag.CatCStyleSyntax, diag.CatDuplicateDecl,
	} {
		if !seen[c] {
			t.Errorf("category %s not invertible from quartus codes", c)
		}
	}
}

// ---------- blind inspection ----------

func TestBlindSpotsCStyle(t *testing.T) {
	code := "module m(input [7:0] a, output reg [7:0] y);\nalways @(*) begin\nfor (int i = 0; i < 8; i++)\ny[i] = a[i];\nend\nendmodule"
	found := false
	for _, h := range BlindHypotheses(code) {
		if h.Category == diag.CatCStyleSyntax {
			found = true
		}
	}
	if !found {
		t.Fatal("blind inspection must spot i++")
	}
}

func TestBlindSpotsMissingEndmodule(t *testing.T) {
	code := "module m(input a, output y);\nassign y = a;\n"
	found := false
	for _, h := range BlindHypotheses(code) {
		if h.Category == diag.CatMissingEndmodule {
			found = true
		}
	}
	if !found {
		t.Fatal("blind inspection must spot the missing endmodule")
	}
}

func TestBlindSpotsUndeclaredClock(t *testing.T) {
	code := "module m(input d, output reg q);\nalways @(posedge clk) q <= d;\nendmodule"
	found := false
	for _, h := range BlindHypotheses(code) {
		if h.Category == diag.CatUndeclaredIdent && h.Symbol == "clk" {
			found = true
		}
	}
	if !found {
		t.Fatal("blind inspection must spot posedge of an undeclared signal")
	}
}

func TestBlindQuietOnCleanCode(t *testing.T) {
	code := `module m(input clk, input [7:0] d, output reg [7:0] q);
	always @(posedge clk)
		q <= d;
endmodule`
	for _, h := range BlindHypotheses(code) {
		if h.Confidence > 0.5 {
			t.Errorf("high-confidence false positive on clean code: %+v", h)
		}
	}
}

// ---------- repair strategies ----------

func quartusHyp(t *testing.T, code string) Hypothesis {
	t.Helper()
	res := compiler.Quartus{}.Compile("main.v", code)
	if res.Ok {
		t.Fatal("fixture compiles")
	}
	hyps := AnalyzeLog(res.Log)
	if len(hyps) == 0 {
		t.Fatalf("no hypotheses from log: %s", res.Log)
	}
	return hyps[0]
}

// assertRepairCompiles applies the category strategy and requires the
// result to compile.
func assertRepairCompiles(t *testing.T, code string) {
	t.Helper()
	h := quartusHyp(t, code)
	out := applyStrategy(code, h)
	if !out.Applied {
		t.Fatalf("strategy did not apply: %s\nhypothesis: %+v", out.Note, h)
	}
	// Iterate: fixing one error may reveal another of the same kind.
	cur := out.Code
	for i := 0; i < 5; i++ {
		res := compiler.Quartus{}.Compile("main.v", cur)
		if res.Ok {
			return
		}
		hyps := AnalyzeLog(res.Log)
		if len(hyps) == 0 {
			break
		}
		next := applyStrategy(cur, hyps[0])
		if !next.Applied || next.Code == cur {
			break
		}
		cur = next.Code
	}
	res := compiler.Quartus{}.Compile("main.v", cur)
	if !res.Ok {
		t.Fatalf("repaired code still fails:\n%s\nlog: %s", cur, res.Log)
	}
}

func TestRepairUndeclaredClockPort(t *testing.T) {
	assertRepairCompiles(t, `module top_module (
	input [7:0] d,
	output reg [7:0] q
);
	always @(posedge clk)
		q <= d;
endmodule`)
}

func TestRepairMisspelledIdent(t *testing.T) {
	assertRepairCompiles(t, `module m(input [7:0] data, output [7:0] y);
	assign y = ~data_r;
endmodule`)
}

func TestRepairIndexOverflow(t *testing.T) {
	assertRepairCompiles(t, `module m(input [7:0] in, output [7:0] out);
	assign {out[0],out[1],out[2],out[3],out[4],out[5],out[6],out[8]} = in;
endmodule`)
}

func TestRepairIndexArithmetic(t *testing.T) {
	// The paper's Fig. 6 shape: (0-1)*16 + ... folds negative.
	assertRepairCompiles(t, `module m(input [255:0] q, output y);
	assign y = q[(0-1)*16 + 15];
endmodule`)
}

func TestRepairInvalidLValue(t *testing.T) {
	assertRepairCompiles(t, `module m(input a, output out);
	always @(*) out = a;
endmodule`)
}

func TestRepairAssignToReg(t *testing.T) {
	assertRepairCompiles(t, `module m(input a, output reg out);
	assign out = a;
endmodule`)
}

func TestRepairMissingSemicolonParenEnd(t *testing.T) {
	// The regression that once pinned the fix rate: an expression ending
	// in ')' still needs its semicolon.
	assertRepairCompiles(t, `module m(input [15:0] bin, output [15:0] gray);
	assign gray = bin ^ (bin >> 1)
endmodule`)
}

func TestRepairMissingEndmodule(t *testing.T) {
	assertRepairCompiles(t, `module m(input a, output y);
	assign y = a;`)
}

func TestRepairCStyle(t *testing.T) {
	assertRepairCompiles(t, `module m(input [7:0] in, output reg [7:0] out);
	integer i;
	always @(*) begin
		for (i = 0; i < 8; i++)
			out[i] = in[7 - i];
	end
endmodule`)
}

func TestRepairMisplacedDirective(t *testing.T) {
	assertRepairCompiles(t, "module m(input a, output y);\n`timescale 1ns/1ps\nassign y = a;\nendmodule")
}

func TestRepairDuplicateDecl(t *testing.T) {
	assertRepairCompiles(t, `module m(input a, output y);
	wire t1;
	wire t1;
	assign y = a;
endmodule`)
}

func TestRepairSensitivity(t *testing.T) {
	assertRepairCompiles(t, `module m(input clk, input d, output reg q);
	always
		q <= d;
endmodule`)
}

func TestRepairPortListDanglingComma(t *testing.T) {
	assertRepairCompiles(t, `module m(
	input a,
	output y,
);
	assign y = a;
endmodule`)
}

// ---------- the full model ----------

func TestModelRepairDeterministicPerSeed(t *testing.T) {
	code := "module m(input a, output out);\nalways @(*) out = a;\nendmodule"
	res := compiler.Quartus{}.Compile("main.v", code)
	req := RepairRequest{Code: code, Feedback: res.Log, SampleSeed: 5}
	a := NewModel(GPT35(), 99).Repair(req)
	b := NewModel(GPT35(), 99).Repair(req)
	if a.Code != b.Code {
		t.Fatal("same seed must reproduce the same repair")
	}
}

func TestModelAptitudePersistence(t *testing.T) {
	m := NewModel(GPT35(), 1)
	u1 := m.aptitude(42, diag.CatIndexOutOfRange)
	u2 := m.aptitude(42, diag.CatIndexOutOfRange)
	if u1 != u2 {
		t.Fatal("aptitude must be deterministic")
	}
	if u1 == m.aptitude(43, diag.CatIndexOutOfRange) {
		t.Fatal("different samples should (almost surely) differ")
	}
	if u1 < 0 || u1 >= 1 {
		t.Fatalf("aptitude %f out of range", u1)
	}
}

func TestGuidanceImprovesFixProbability(t *testing.T) {
	// Statistical check: across many sample seeds, repairs with matching
	// guidance succeed at least as often as without.
	code := `module m(input [255:0] q, output y);
	assign y = q[(0-1)*16 + 15];
endmodule`
	res := compiler.Quartus{}.Compile("main.v", code)
	guidance := rag.ExactTag{}.Retrieve(rag.QuartusDB(), res.Log, 4)
	if len(guidance) == 0 {
		t.Fatal("no guidance retrieved for the index error")
	}
	without, with := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		m1 := NewModel(GPT35(), seed)
		r1 := m1.Repair(RepairRequest{Code: code, Feedback: res.Log, SampleSeed: seed})
		if c := (compiler.Quartus{}).Compile("main.v", r1.Code); c.Ok {
			without++
		}
		m2 := NewModel(GPT35(), seed)
		r2 := m2.Repair(RepairRequest{Code: code, Feedback: res.Log, Guidance: guidance, SampleSeed: seed})
		if c := (compiler.Quartus{}).Compile("main.v", r2.Code); c.Ok {
			with++
		}
	}
	if with <= without {
		t.Fatalf("guidance did not help: %d/120 vs %d/120 without", with, without)
	}
}

func TestThoughtRendering(t *testing.T) {
	hyps := []Hypothesis{{Category: diag.CatUndeclaredIdent, Symbol: "clk", Line: 5, Confidence: 0.9}}
	got := Thought("some log", hyps)
	if !strings.Contains(got, "clk") {
		t.Fatalf("thought should mention the symbol: %q", got)
	}
	if got := Thought("Correct the syntax error in the code.", nil); !strings.Contains(got, "inspect") {
		t.Fatalf("no-feedback thought wrong: %q", got)
	}
}

// ---------- generation ----------

func TestGenerateKindsRoughlyMatchRates(t *testing.T) {
	ref := `module top_module(input [7:0] a, input [7:0] b, output [7:0] y);
	assign y = a ^ b;
endmodule
`
	rates := GenRates{Pass: 0.5, SyntaxGivenFail: 0.6, LogicOKGivenSyntax: 0.5, TwoErrors: 0.2}
	rng := rand.New(rand.NewSource(8))
	counts := map[SampleKind]int{}
	n := 2000
	for i := 0; i < n; i++ {
		s := Generate(ref, rates, rng)
		counts[s.Kind]++
	}
	passShare := float64(counts[KindPass]) / float64(n)
	if passShare < 0.45 || passShare > 0.55 {
		t.Errorf("pass share %.2f, want ~0.5", passShare)
	}
	synShare := float64(counts[KindSyntaxErr]) / float64(n)
	if synShare < 0.25 || synShare > 0.35 {
		t.Errorf("syntax share %.2f, want ~0.3", synShare)
	}
}

func TestGenerateSyntaxSamplesFailCompilation(t *testing.T) {
	ref := `module top_module(input clk, input reset, output reg [7:0] q);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else
			q <= q + 1;
	end
endmodule
`
	rates := GenRates{Pass: 0, SyntaxGivenFail: 1, LogicOKGivenSyntax: 1, TwoErrors: 0}
	rng := rand.New(rand.NewSource(9))
	failing := 0
	for i := 0; i < 100; i++ {
		s := Generate(ref, rates, rng)
		if _, design, _ := compiler.Frontend(s.Code); design == nil {
			failing++
		}
	}
	// misplaced-timescale injections are auto-repaired by the rule-based
	// fixer at evaluation time, not here, so raw failure should be high.
	if failing < 90 {
		t.Errorf("only %d/100 syntax samples fail compilation", failing)
	}
}

func TestSemanticMutateChangesBehaviourNotCompilability(t *testing.T) {
	ref := `module top_module(input clk, input reset, output reg [7:0] q);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else
			q <= q + 1;
	end
endmodule
`
	rng := rand.New(rand.NewSource(10))
	changed := 0
	for i := 0; i < 50; i++ {
		out := semanticMutate(ref, rng)
		if _, design, _ := compiler.Frontend(out); design == nil {
			t.Fatalf("semantic mutation broke compilation:\n%s", out)
		}
		if out != ref {
			changed++
		}
	}
	if changed < 45 {
		t.Errorf("semantic mutation no-oped %d/50 times", 50-changed)
	}
}

func TestSkewRatesPreservesBounds(t *testing.T) {
	r := GenRates{Pass: 0.5}
	for _, id := range []string{"a", "b", "c", "counter_up_w8", "mux2_w100"} {
		s := SkewRates(r, id)
		if s.Pass < 0 || s.Pass > 1 {
			t.Fatalf("skewed pass %.3f out of bounds for %s", s.Pass, id)
		}
		again := SkewRates(r, id)
		if s.Pass != again.Pass {
			t.Fatal("skew must be deterministic per problem")
		}
	}
}
