package llm

import (
	"regexp"
	"strings"

	"repro/internal/diag"
)

// BlindHypotheses inspects the code visually, with no compiler feedback —
// the model's only option under the "Simple" feedback setting, and the
// mechanism that lets a strong model fix a masked second error in the same
// rewrite. Only defect classes with a visual signature are detectable, and
// at lower confidence than a compiler log would give; that confidence gap
// is exactly what Table 1's Simple-vs-iverilog-vs-Quartus columns measure.
func BlindHypotheses(code string) []Hypothesis {
	var out []Hypothesis
	lines := strings.Split(code, "\n")

	inModule := false
	beginDepth := 0
	sawEndmodule := false
	declaredRanges := map[string]int{}
	declRe := regexp.MustCompile(`\[(\d+):0\]\s*([A-Za-z_][A-Za-z0-9_]*)`)
	idxRe := regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]`)

	for i, raw := range lines {
		t := strings.TrimSpace(raw)
		lineNo := i + 1
		if strings.HasPrefix(t, "module") {
			inModule = true
		}
		if strings.HasPrefix(t, "endmodule") {
			sawEndmodule = true
			inModule = false
		}
		beginDepth += strings.Count(" "+t+" ", " begin")
		if wordCount(t, "end") > 0 {
			beginDepth -= wordCount(t, "end")
		}
		for _, m := range declRe.FindAllStringSubmatch(t, -1) {
			var msb int
			if _, err := sscanInt(m[1], &msb); err == nil {
				declaredRanges[m[2]] = msb
			}
		}

		// C idioms are the most visually obvious defects.
		if strings.Contains(t, "++") || strings.Contains(t, "--") ||
			compoundAssignRe.MatchString(t) {
			out = append(out, Hypothesis{
				Line: lineNo, Category: diag.CatCStyleSyntax,
				Confidence: 0.72, Excerpt: t,
			})
		}
		if strings.HasSuffix(t, "{") && (strings.Contains(t, ")") || strings.Contains(t, "else")) {
			out = append(out, Hypothesis{
				Line: lineNo, Category: diag.CatCStyleSyntax,
				Confidence: 0.6, Excerpt: t,
			})
		}
		// Directives inside a module body stand out.
		if inModule && strings.HasPrefix(t, "`") && !strings.HasPrefix(t, "`timescale 1ps") {
			if !strings.HasPrefix(t, "module") {
				out = append(out, Hypothesis{
					Line: lineNo, Category: diag.CatMisplacedDirective,
					Confidence: 0.65, Excerpt: t,
				})
			}
		}
		// An always with no '@' reads wrong immediately.
		if strings.Contains(t, "always") && !strings.Contains(t, "@") {
			out = append(out, Hypothesis{
				Line: lineNo, Category: diag.CatSensitivityList,
				Confidence: 0.6, Excerpt: t,
			})
		}
		// Unterminated statement lines: a careful reader notices a missing
		// semicolon, with moderate reliability.
		if looksUnterminated(t, lines, i) {
			out = append(out, Hypothesis{
				Line: lineNo + 1, Category: diag.CatMissingSemicolon,
				Confidence: 0.45, Excerpt: t,
			})
		}
		// Bad digits in literals.
		if m := badLiteralRe.FindString(t); m != "" {
			out = append(out, Hypothesis{
				Line: lineNo, Category: diag.CatMalformedLiteral,
				Confidence: 0.55, Excerpt: t,
			})
		}
		// Reserved word declared as a signal.
		if keywordDeclRe.MatchString(t) {
			out = append(out, Hypothesis{
				Line: lineNo, Category: diag.CatKeywordAsIdent,
				Confidence: 0.5, Excerpt: t,
			})
		}
		// Constant index beyond a [N:0] declaration seen earlier.
		for _, m := range idxRe.FindAllStringSubmatch(t, -1) {
			msb, ok := declaredRanges[m[1]]
			if !ok {
				continue
			}
			var v int
			if _, err := sscanInt(m[2], &v); err == nil && v > msb {
				out = append(out, Hypothesis{
					Line: lineNo, Category: diag.CatIndexOutOfRange,
					Symbol: m[1], Confidence: 0.35,
					Excerpt: t + " // index " + m[2] + " vs [" + itoa(msb) + ":0]",
				})
			}
		}
	}

	// Structural balance.
	if beginDepth > 0 {
		out = append(out, Hypothesis{
			Line: len(lines), Category: diag.CatUnmatchedBeginEnd,
			Confidence: 0.5, Excerpt: "begin/end imbalance",
		})
	}
	if !sawEndmodule && strings.Contains(code, "module") {
		out = append(out, Hypothesis{
			Line: len(lines), Category: diag.CatMissingEndmodule,
			Confidence: 0.7, Excerpt: "file ends without endmodule",
		})
	}

	// Signals driven in always blocks but not declared reg: needs
	// cross-referencing, so lower confidence.
	out = append(out, blindLValueScan(code, lines)...)
	// posedge of a signal that is not in any declaration.
	out = append(out, blindUndeclaredScan(code, lines)...)
	return out
}

var (
	compoundAssignRe = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_]*\s*[+\-*/&|^]=[^=]`)
	badLiteralRe     = regexp.MustCompile(`\d+'b[01_]*[2-9a-fA-F]|\d+'h[0-9a-fA-F_]*[g-zG-Z]`)
	keywordDeclRe    = regexp.MustCompile(`^\s*(wire|reg)\s+(case|begin|end|wire|reg|module)\s*;`)
	edgeUseRe        = regexp.MustCompile(`(posedge|negedge)\s+([A-Za-z_][A-Za-z0-9_]*)`)
	alwaysTargetRe   = regexp.MustCompile(`^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(\[[^\]]*\]\s*)?<?=[^=]`)
)

func looksUnterminated(t string, lines []string, i int) bool {
	if t == "" || strings.HasSuffix(t, ";") || strings.HasSuffix(t, ",") {
		return false
	}
	if !strings.HasPrefix(t, "assign") && !strings.Contains(t, "<=") {
		return false
	}
	if strings.HasSuffix(t, "begin") || strings.HasSuffix(t, "(") ||
		strings.HasSuffix(t, "?") || strings.HasSuffix(t, ":") ||
		strings.HasSuffix(t, "|") || strings.HasSuffix(t, "&") ||
		strings.HasSuffix(t, "+") || strings.HasSuffix(t, "=") {
		return false // likely a deliberate continuation
	}
	// Next substantive line starting a new construct strengthens the read.
	for j := i + 1; j < len(lines); j++ {
		n := strings.TrimSpace(lines[j])
		if n == "" {
			continue
		}
		return strings.HasPrefix(n, "assign") || strings.HasPrefix(n, "end") ||
			strings.HasPrefix(n, "always") || strings.HasPrefix(n, "if") ||
			strings.HasPrefix(n, "wire") || strings.HasPrefix(n, "reg")
	}
	return false
}

func blindLValueScan(code string, lines []string) []Hypothesis {
	var out []Hypothesis
	regDecl := map[string]bool{}
	outPlain := map[string]int{} // output (non-reg) name -> decl line
	for i, raw := range lines {
		t := strings.TrimSpace(raw)
		if m := regexp.MustCompile(`\breg\b[^;]*?\b([A-Za-z_][A-Za-z0-9_]*)`).FindStringSubmatch(t); m != nil {
			regDecl[m[1]] = true
		}
		if strings.Contains(t, "output") && !strings.Contains(t, "reg") {
			noRange := regexp.MustCompile(`\[[^\]]*\]`).ReplaceAllString(t, "")
			for _, w := range anyIdentRe.FindAllString(noRange, -1) {
				if w != "output" && w != "wire" && w != "signed" && w != "input" {
					outPlain[w] = i + 1
				}
			}
		}
	}
	inAlways := false
	for _, raw := range lines {
		t := strings.TrimSpace(raw)
		if strings.Contains(t, "always") {
			inAlways = true
		}
		if strings.HasPrefix(t, "assign") {
			inAlways = false
			// assign driving a reg?
			if m := alwaysTargetRe.FindStringSubmatch(strings.TrimPrefix(t, "assign ")); m != nil && regDecl[m[1]] {
				out = append(out, Hypothesis{
					Category: diag.CatAssignToReg, Symbol: m[1],
					Confidence: 0.35, Excerpt: t,
				})
			}
			continue
		}
		if !inAlways {
			continue
		}
		if m := alwaysTargetRe.FindStringSubmatch(t); m != nil {
			if declLine, isPlainOut := outPlain[m[1]]; isPlainOut && !regDecl[m[1]] {
				out = append(out, Hypothesis{
					Line: declLine, Category: diag.CatInvalidLValue, Symbol: m[1],
					Confidence: 0.38, Excerpt: t,
				})
			}
		}
	}
	return out
}

func blindUndeclaredScan(code string, lines []string) []Hypothesis {
	declared := map[string]bool{}
	for _, n := range declaredNames(code) {
		declared[n] = true
	}
	var out []Hypothesis
	for i, raw := range lines {
		for _, m := range edgeUseRe.FindAllStringSubmatch(raw, -1) {
			if !declared[m[2]] {
				out = append(out, Hypothesis{
					Line: i + 1, Category: diag.CatUndeclaredIdent, Symbol: m[2],
					Confidence: 0.4, Excerpt: strings.TrimSpace(raw),
				})
			}
		}
	}
	return out
}

// small strconv shims keeping the scanning code terse
func sscanInt(s string, v *int) (int, error) {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errNotDigit
		}
		n = n*10 + int(s[i]-'0')
	}
	*v = n
	return 1, nil
}

var errNotDigit = errND{}

type errND struct{}

func (errND) Error() string { return "not a digit" }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func wordCount(s, word string) int {
	count := 0
	idx := 0
	for {
		j := strings.Index(s[idx:], word)
		if j < 0 {
			return count
		}
		k := idx + j
		before := k == 0 || !isWordChar(s[k-1])
		after := k+len(word) >= len(s) || !isWordChar(s[k+len(word)])
		if before && after {
			count++
		}
		idx = k + len(word)
	}
}

func isWordChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
