// Package llm implements the simulated large language model at the centre
// of the reproduction. The paper drives GPT-3.5/GPT-4 through OpenAI APIs;
// offline, we replace the network call with a mechanistic model whose
// behaviour reproduces the causal structure the paper measures:
//
//   - it understands compiler logs only as well as the log dialect allows
//     (loganalysis.go) — richer logs localize errors better;
//   - it fixes an error by selecting and executing a category-keyed repair
//     strategy (repair.go) with a persona-dependent success probability;
//   - with no compiler feedback it falls back to blind visual inspection
//     (blind.go), which only spots visually obvious defect classes;
//   - retrieved RAG guidance raises the success probability of the
//     matching category's strategy, most strongly for the categories the
//     base model is weak at;
//   - failed or hallucinated edits can damage the code, which One-shot
//     prompting cannot recover from but iterative ReAct can.
//
// No fix-rate from the paper is hard-coded anywhere; Table 1's numbers
// emerge from these mechanisms.
package llm

import (
	"regexp"
	"strconv"
	"strings"

	"repro/internal/diag"
)

// Hypothesis is the model's belief about one error after reading the
// compiler log: where it is, what it is about, and which class it belongs
// to. Confidence reflects how explicit the log was.
type Hypothesis struct {
	Line     int
	Symbol   string
	Category diag.Category
	// Confidence in [0,1]: how unambiguously the log states the fault.
	Confidence float64
	// Excerpt is the log line the hypothesis came from.
	Excerpt string
}

// quartusCodeToCategory inverts the Quartus persona's error numbering.
var quartusCodeToCategory = map[int]diag.Category{
	10161: diag.CatUndeclaredIdent,
	10232: diag.CatIndexOutOfRange,
	10137: diag.CatInvalidLValue,
	10219: diag.CatAssignToReg,
	10170: diag.CatUnexpectedToken,
	10171: diag.CatUnmatchedBeginEnd,
	10663: diag.CatCStyleSyntax,
	10190: diag.CatMisplacedDirective,
	10028: diag.CatDuplicateDecl,
	10112: diag.CatPortMismatch,
	10110: diag.CatNonConstantExpr,
	10114: diag.CatKeywordAsIdent,
	10120: diag.CatMalformedLiteral,
	10122: diag.CatSensitivityList,
	10125: diag.CatBadConcat,
}

var (
	quartusErrRe  = regexp.MustCompile(`Error \((\d+)\): Verilog HDL error at [^(]*\((\d+)\): ([^.]+)`)
	quotedNameRe  = regexp.MustCompile(`["'` + "`" + `]([A-Za-z_][A-Za-z0-9_]*)["'` + "`" + `]`)
	iverilogLocRe = regexp.MustCompile(`^([^:\s]+):(\d+): (?:error: )?(.*)$`)
)

// AnalyzeLog parses a persona's compiler log into hypotheses. The quality
// difference between personas is intrinsic: Quartus logs carry error codes
// and symbols (high confidence), iverilog logs carry line numbers and
// terse phrasing (medium, and zero on "I give up."), Simple logs carry
// nothing and yield no hypotheses at all.
func AnalyzeLog(log string) []Hypothesis {
	var out []Hypothesis
	if strings.Contains(log, "Error (") {
		out = append(out, analyzeQuartus(log)...)
	}
	out = append(out, analyzeIVerilog(log)...)
	return out
}

func analyzeQuartus(log string) []Hypothesis {
	var out []Hypothesis
	for _, line := range strings.Split(log, "\n") {
		m := quartusErrRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		code, _ := strconv.Atoi(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		cat, ok := quartusCodeToCategory[code]
		if !ok {
			cat = diag.CatUnexpectedToken
		}
		h := Hypothesis{
			Line:       lineNo,
			Category:   refineSyntaxCategory(cat, m[3]),
			Confidence: 0.96,
			Excerpt:    strings.TrimSpace(line),
		}
		if sym := quotedNameRe.FindStringSubmatch(m[3]); sym != nil {
			h.Symbol = sym[1]
		}
		out = append(out, h)
	}
	return out
}

// refineSyntaxCategory sharpens the generic 10170 bucket using message
// text, the way a reader distinguishes "expected ';'" from other syntax
// complaints.
func refineSyntaxCategory(cat diag.Category, msg string) diag.Category {
	if cat == diag.CatUnmatchedBeginEnd && strings.Contains(msg, "missing 'endmodule'") {
		return diag.CatMissingEndmodule
	}
	if cat != diag.CatUnexpectedToken {
		return cat
	}
	switch {
	case strings.Contains(msg, "expected ';'"):
		return diag.CatMissingSemicolon
	case strings.Contains(msg, "expected a port name"):
		return diag.CatPortMismatch
	case strings.Contains(msg, "outside of any module"),
		strings.Contains(msg, "expected 'module'"),
		strings.Contains(msg, "without a matching 'module'"):
		return diag.CatModuleStructure
	}
	return cat
}

func analyzeIVerilog(log string) []Hypothesis {
	if strings.Contains(log, "I give up.") {
		// The degradation case: the log admits defeat; at most the first
		// flagged line is usable, with low confidence and no category.
		var out []Hypothesis
		for _, line := range strings.Split(log, "\n") {
			m := iverilogLocRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			n, _ := strconv.Atoi(m[2])
			out = append(out, Hypothesis{
				Line: n, Category: diag.CatUnexpectedToken,
				Confidence: 0.25, Excerpt: strings.TrimSpace(line),
			})
			break
		}
		return out
	}
	var out []Hypothesis
	for _, line := range strings.Split(log, "\n") {
		if strings.Contains(line, "Error (") {
			continue // quartus line, handled elsewhere
		}
		m := iverilogLocRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[2])
		msg := m[3]
		h := Hypothesis{Line: n, Excerpt: strings.TrimSpace(line)}
		switch {
		case strings.Contains(msg, "Unable to bind"):
			h.Category = diag.CatUndeclaredIdent
			h.Confidence = 0.85
		case strings.Contains(msg, "not a valid l-value"):
			h.Category = diag.CatInvalidLValue
			h.Confidence = 0.85
			// "out is not a valid l-value in top_module."
			fields := strings.Fields(msg)
			if len(fields) > 0 {
				h.Symbol = strings.Trim(fields[0], "`'\"")
			}
		case strings.Contains(msg, "cannot be driven by primitives"):
			h.Category = diag.CatAssignToReg
			h.Confidence = 0.75
			if f := strings.Fields(msg); len(f) >= 2 {
				h.Symbol = strings.Trim(f[1], ";`'\"")
			}
		case strings.Contains(msg, "out of range"):
			h.Category = diag.CatIndexOutOfRange
			h.Confidence = 0.8
		case strings.Contains(msg, "Error in event expression"):
			h.Category = diag.CatSensitivityList
			h.Confidence = 0.7
		case strings.Contains(msg, "macro names"):
			h.Category = diag.CatMisplacedDirective
			h.Confidence = 0.7
		case strings.Contains(msg, "already been declared"):
			h.Category = diag.CatDuplicateDecl
			h.Confidence = 0.7
		case strings.Contains(msg, "Port") && strings.Contains(msg, "not defined"):
			h.Category = diag.CatPortMismatch
			h.Confidence = 0.65
		case strings.Contains(msg, "Errors in statement block"):
			h.Category = diag.CatUnmatchedBeginEnd
			h.Confidence = 0.55
		case strings.Contains(msg, "Dimensions must be constant"):
			h.Category = diag.CatNonConstantExpr
			h.Confidence = 0.6
		case strings.Contains(msg, "Malformed statement"):
			h.Category = diag.CatMalformedLiteral
			h.Confidence = 0.4
		case strings.Contains(msg, "syntax error"):
			h.Category = diag.CatUnexpectedToken
			h.Confidence = 0.5
		default:
			continue
		}
		if h.Symbol == "" {
			if sym := quotedNameRe.FindStringSubmatch(msg); sym != nil {
				h.Symbol = sym[1]
			}
		}
		out = append(out, h)
	}
	return out
}
