package llm

import (
	"hash/fnv"
	"math/rand"
	"regexp"
	"strings"

	"repro/internal/compiler"
	"repro/internal/inject"
)

// This file is the *generation* half of the simulated LLM: where repair.go
// models the model fixing code, this models the model writing code in the
// first place — the zero-shot sampling step that produces the erroneous
// implementations the whole paper is about.
//
// Per-suite outcome rates are the simulated model's calibration: what
// fraction of samples are functionally correct, what fraction of failures
// are syntax errors (the paper's headline 55% statistic for Human), and
// how often syntax-broken code is logically correct underneath (which
// bounds how much pass@1 can improve from syntax fixing alone).

// SampleKind classifies a generated sample's ground truth.
type SampleKind int

// Sample kinds.
const (
	// KindPass is functionally correct code.
	KindPass SampleKind = iota
	// KindSyntaxErr fails to compile.
	KindSyntaxErr
	// KindSimErr compiles but fails simulation.
	KindSimErr
)

// String names the kind.
func (k SampleKind) String() string {
	switch k {
	case KindPass:
		return "pass"
	case KindSyntaxErr:
		return "syntax-error"
	case KindSimErr:
		return "simulation-error"
	}
	return "unknown"
}

// GenRates are the generation outcome probabilities for one (suite,
// difficulty) cell.
type GenRates struct {
	// Pass is the probability the sample is functionally correct.
	Pass float64
	// SyntaxGivenFail is the probability a failing sample fails with a
	// syntax error (vs a simulation error).
	SyntaxGivenFail float64
	// LogicOKGivenSyntax is the probability a syntax-broken sample is
	// logically correct underneath, i.e. will pass simulation once its
	// syntax is repaired.
	LogicOKGivenSyntax float64
	// TwoErrors is the probability a syntax-broken sample carries two
	// injected errors rather than one (cascades reward iteration).
	TwoErrors float64
}

// RatesFor returns the gpt-3.5 generation calibration for a suite cell.
// The numbers encode the paper's measured structure: Machine failures are
// mostly syntactic over correct logic (low-level descriptions are easy to
// get logically right), Human-hard failures are mostly semantic, and the
// Human syntax share works out to ~55% of all errors (§1).
func RatesFor(suite string, difficulty string) GenRates {
	switch suite {
	case "machine":
		if difficulty == "easy" {
			return GenRates{Pass: 0.53, SyntaxGivenFail: 0.62, LogicOKGivenSyntax: 0.98, TwoErrors: 0.15}
		}
		return GenRates{Pass: 0.32, SyntaxGivenFail: 0.68, LogicOKGivenSyntax: 0.94, TwoErrors: 0.18}
	case "human":
		if difficulty == "easy" {
			return GenRates{Pass: 0.47, SyntaxGivenFail: 0.55, LogicOKGivenSyntax: 0.55, TwoErrors: 0.15}
		}
		return GenRates{Pass: 0.015, SyntaxGivenFail: 0.52, LogicOKGivenSyntax: 0.14, TwoErrors: 0.18}
	case "rtllm":
		return GenRates{Pass: 0.04, SyntaxGivenFail: 0.30, LogicOKGivenSyntax: 0.18, TwoErrors: 0.35}
	}
	return GenRates{Pass: 0.4, SyntaxGivenFail: 0.55, LogicOKGivenSyntax: 0.5, TwoErrors: 0.35}
}

// SkewRates returns the rates with a deterministic per-problem skew on
// the pass probability. Real pass@k data is strongly correlated within a
// problem — a model either "knows" a circuit or it does not — which is why
// the paper's pass@5 sits far below the i.i.d. prediction. The skew
// spreads problems between mostly-solved and mostly-unsolved while
// preserving the suite-level mean pass rate.
func SkewRates(r GenRates, problemID string) GenRates {
	h := fnv.New64a()
	h.Write([]byte(problemID))
	u := float64(h.Sum64()%1_000_000) / 1_000_000 // uniform in [0,1)
	spread := 1.6 * r.Pass
	if 1-r.Pass < r.Pass {
		spread = 1.6 * (1 - r.Pass)
	}
	p := r.Pass + (u-0.5)*spread
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	out := r
	out.Pass = p
	return out
}

// Sample is one generated implementation with its ground truth.
type Sample struct {
	Code string
	Kind SampleKind
	// Mutations records injected syntax errors (empty otherwise).
	Mutations []inject.Mutation
	// LogicOK is true when the code's logic (ignoring injected syntax
	// errors) matches the reference, i.e. repairing the syntax yields
	// functionally correct code.
	LogicOK bool
}

// Generate produces one sample for a reference solution under the given
// rates. The reference is assumed correct and compiling.
func Generate(ref string, rates GenRates, rng *rand.Rand) Sample {
	roll := rng.Float64()
	switch {
	case roll < rates.Pass:
		return Sample{Code: decorate(ref, rng), Kind: KindPass, LogicOK: true}
	case roll < rates.Pass+(1-rates.Pass)*rates.SyntaxGivenFail:
		base := ref
		logicOK := true
		if rng.Float64() >= rates.LogicOKGivenSyntax {
			mutated := semanticMutate(ref, rng)
			logicOK = mutated == ref
			base = mutated
		}
		k := 1
		if rng.Float64() < rates.TwoErrors {
			k = 2
		}
		broken, muts := inject.InjectRandom(base, k, rng)
		if len(muts) == 0 {
			// No mutator applied (tiny module): fall back to a universal
			// breakage.
			broken = strings.Replace(base, "endmodule", "", 1)
			muts = nil
		}
		return Sample{Code: decorate(broken, rng), Kind: KindSyntaxErr, Mutations: muts, LogicOK: logicOK}
	default:
		mutated := semanticMutate(ref, rng)
		return Sample{Code: decorate(mutated, rng), Kind: KindSimErr, LogicOK: mutated == ref}
	}
}

// decorate adds the cosmetic noise LLM chat output carries: markdown
// fences and lead-in prose (which the rule-based fixer strips), sometimes
// a gratuitous timescale at file top (legal there).
func decorate(code string, rng *rand.Rand) string {
	switch rng.Intn(6) {
	case 0:
		return "Here is the Verilog implementation:\n```verilog\n" + code + "```\n"
	case 1:
		return "```\n" + code + "```"
	case 2:
		return "`timescale 1ns/1ps\n" + code
	default:
		return code
	}
}

// ---------- semantic mutation (compiles, wrong behaviour) ----------

type semanticMutator struct {
	name  string
	apply func(src string, rng *rand.Rand) (string, bool)
}

var semanticMutators = []semanticMutator{
	{"swap-add-sub", reSwap(`([^+])\+ 1\b`, "${1}- 1")},
	{"swap-and-or", reSwapLiteral(" & ", " | ")},
	{"swap-xor-and", reSwapLiteral(" ^ ", " & ")},
	{"flip-equality", reSwapLiteral(" == ", " != ")},
	{"flip-compare", reSwapLiteral(" < ", " >= ")},
	{"swap-ternary", swapTernaryArms},
	{"off-by-one-const", offByOneConstant},
	{"flip-reset-value", flipResetValue},
	{"drop-invert", reSwapLiteral("~", "")},
	{"invert-nba-rhs", invertNBARHS},
	{"invert-assign-rhs", invertAssignRHS},
}

func reSwapLiteral(old, new string) func(string, *rand.Rand) (string, bool) {
	return func(src string, _ *rand.Rand) (string, bool) {
		idx := strings.Index(src, old)
		if idx < 0 {
			return src, false
		}
		return src[:idx] + new + src[idx+len(old):], true
	}
}

func reSwap(pattern, repl string) func(string, *rand.Rand) (string, bool) {
	re := regexp.MustCompile(pattern)
	return func(src string, _ *rand.Rand) (string, bool) {
		loc := re.FindStringIndex(src)
		if loc == nil {
			return src, false
		}
		return re.ReplaceAllString(src[:loc[1]], repl) + src[loc[1]:], true
	}
}

var ternaryRe = regexp.MustCompile(`\?\s*([^:;]+?)\s*:\s*([^;]+?);`)

func swapTernaryArms(src string, _ *rand.Rand) (string, bool) {
	m := ternaryRe.FindStringSubmatchIndex(src)
	if m == nil {
		return src, false
	}
	a := src[m[2]:m[3]]
	b := src[m[4]:m[5]]
	return src[:m[2]] + b + src[m[3]:m[4]] + a + src[m[5]:], true
}

var compareConstRe = regexp.MustCompile(`(==|<|>)\s*(\d+)\b`)

func offByOneConstant(src string, _ *rand.Rand) (string, bool) {
	m := compareConstRe.FindStringSubmatchIndex(src)
	if m == nil {
		return src, false
	}
	val := src[m[4]:m[5]]
	n := 0
	for i := 0; i < len(val); i++ {
		n = n*10 + int(val[i]-'0')
	}
	if n == 0 {
		n = 2
	} else {
		n--
	}
	return src[:m[4]] + itoa(n) + src[m[5]:], true
}

var resetZeroRe = regexp.MustCompile(`(<=\s*)0(;)`)

func flipResetValue(src string, _ *rand.Rand) (string, bool) {
	loc := resetZeroRe.FindStringSubmatchIndex(src)
	if loc == nil {
		return src, false
	}
	// keep group 1 ("<= "), replace the 0, keep the ";"
	return src[:loc[3]] + "1" + src[loc[4]:], true
}

var nbaRHSRe = regexp.MustCompile(`<=\s*([A-Za-z_][^;]*);`)

// invertNBARHS complements the right-hand side of the first non-blocking
// assignment — a near-universal behavioural mutation for clocked designs.
func invertNBARHS(src string, _ *rand.Rand) (string, bool) {
	m := nbaRHSRe.FindStringSubmatchIndex(src)
	if m == nil {
		return src, false
	}
	return src[:m[2]] + "~(" + src[m[2]:m[3]] + ")" + src[m[3]:], true
}

var assignRHSRe = regexp.MustCompile(`\bassign\s+[A-Za-z_][A-Za-z0-9_]*\s*=\s*([^;]+);`)

// invertAssignRHS complements the right-hand side of the first continuous
// assignment — the combinational counterpart of invertNBARHS.
func invertAssignRHS(src string, _ *rand.Rand) (string, bool) {
	m := assignRHSRe.FindStringSubmatchIndex(src)
	if m == nil {
		return src, false
	}
	return src[:m[2]] + "~(" + src[m[2]:m[3]] + ")" + src[m[3]:], true
}

// semanticMutate applies one compiling-but-wrong transformation. It
// verifies the result still compiles (trying mutators in random order) and
// falls back to the reference if none applies — an honest tail: some
// "wrong" samples are accidentally right.
func semanticMutate(ref string, rng *rand.Rand) string {
	// Subtle mutators first in random order; the two universal RHS
	// inverters act as a fallback so a "wrong logic" sample almost never
	// silently degenerates into the reference.
	subtle := len(semanticMutators) - 2
	order := rng.Perm(subtle)
	order = append(order, subtle, subtle+1)
	for _, i := range order {
		out, ok := semanticMutators[i].apply(ref, rng)
		if !ok || out == ref {
			continue
		}
		if _, design, _ := compiler.Frontend(out); design != nil {
			return out
		}
	}
	return ref
}

// ProposeLogicEdit applies one random local semantic edit — the model's
// move set when asked to repair a logic (simulation) error. It draws from
// the same edit space the generator's mutations live in, so a proposal
// can genuinely invert a wrong-operator or off-by-one defect; whether it
// helps is for the caller's testbench to judge. Returns the input
// unchanged when no edit applies.
func ProposeLogicEdit(src string, rng *rand.Rand) string {
	order := rng.Perm(len(semanticMutators))
	for _, i := range order {
		out, ok := semanticMutators[i].apply(src, rng)
		if ok && out != src {
			return out
		}
	}
	return src
}
