package llm

import (
	"fmt"
	"math/rand"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/diag"
)

// Outcome is the result of attempting one repair strategy.
type Outcome struct {
	// Code is the (possibly rewritten) source.
	Code string
	// Applied is true when the strategy found a structural site and
	// rewrote it. False means the strategy could not even locate a fix.
	Applied bool
	// StructDifficulty in [0,1] rates how much reasoning the concrete
	// instance demanded (a literal index bump is 0.15; untangling index
	// arithmetic — the paper's Fig. 6 — is 0.9+).
	StructDifficulty float64
	// Note describes the edit for the ReAct transcript.
	Note string
}

func failed(code, note string) Outcome {
	return Outcome{Code: code, Applied: false, StructDifficulty: 1, Note: note}
}

// applyStrategy dispatches the repair strategy for the hypothesis'
// category. It performs a real text edit: the returned code is what gets
// recompiled.
func applyStrategy(code string, h Hypothesis) Outcome {
	switch h.Category {
	case diag.CatUndeclaredIdent:
		return repairUndeclared(code, h)
	case diag.CatIndexOutOfRange:
		return repairIndex(code, h)
	case diag.CatInvalidLValue:
		return repairInvalidLValue(code, h)
	case diag.CatAssignToReg:
		return repairAssignToReg(code, h)
	case diag.CatMissingSemicolon:
		return repairMissingSemicolon(code, h)
	case diag.CatUnmatchedBeginEnd:
		return repairBeginEnd(code, h)
	case diag.CatMissingEndmodule:
		return repairMissingEndmodule(code, h)
	case diag.CatCStyleSyntax:
		return repairCStyle(code, h)
	case diag.CatMisplacedDirective:
		return repairDeleteLine(code, h, "removed the misplaced compiler directive")
	case diag.CatKeywordAsIdent:
		return repairDeleteLine(code, h, "removed the declaration that used a reserved word as a name")
	case diag.CatMalformedLiteral:
		return repairLiteral(code, h)
	case diag.CatDuplicateDecl:
		return repairDeleteLine(code, h, "removed the duplicate declaration")
	case diag.CatSensitivityList:
		return repairSensitivity(code, h)
	case diag.CatPortMismatch:
		return repairPortMismatch(code, h)
	case diag.CatModuleStructure:
		return repairModuleStructure(code, h)
	case diag.CatUnexpectedToken, diag.CatGiveUp:
		return repairGenericSyntax(code, h)
	case diag.CatNonConstantExpr:
		return failed(code, "could not rewrite the non-constant expression")
	case diag.CatBadConcat:
		return repairGenericSyntax(code, h)
	default:
		return failed(code, "no strategy for "+h.Category.String())
	}
}

// ---------- helpers ----------

func splitLines(code string) []string { return strings.Split(code, "\n") }

// lineAt returns the 0-based index for a 1-based diagnostic line, clamped.
func lineAt(lines []string, diagLine int) int {
	i := diagLine - 1
	if i < 0 {
		return 0
	}
	if i >= len(lines) {
		return len(lines) - 1
	}
	return i
}

var declNameRe = regexp.MustCompile(`\b(?:input|output|inout|wire|reg|logic|integer)\b[^;,\n]*?([A-Za-z_][A-Za-z0-9_]*)\s*[;,\n)]`)
var anyIdentRe = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_]*`)

// declaredNames extracts the declared signal names, textually.
func declaredNames(code string) []string {
	seen := map[string]bool{}
	var out []string
	for _, line := range splitLines(code) {
		t := strings.TrimSpace(line)
		if !strings.HasPrefix(t, "input") && !strings.HasPrefix(t, "output") &&
			!strings.HasPrefix(t, "inout") && !strings.HasPrefix(t, "wire") &&
			!strings.HasPrefix(t, "reg") && !strings.HasPrefix(t, "integer") &&
			!strings.HasPrefix(t, "logic") {
			continue
		}
		// Strip the range, then every identifier that is not a keyword is
		// a declared name.
		noRange := regexp.MustCompile(`\[[^\]]*\]`).ReplaceAllString(t, "")
		for _, w := range anyIdentRe.FindAllString(noRange, -1) {
			switch w {
			case "input", "output", "inout", "wire", "reg", "logic",
				"integer", "signed":
				continue
			}
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// editDistance is Levenshtein distance, used to spot misspellings.
func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func minInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ---------- strategies ----------

func repairUndeclared(code string, h Hypothesis) Outcome {
	if h.Symbol == "" {
		return failed(code, "log did not name the undeclared object")
	}
	// 1) Misspelling: a declared name within edit distance 2.
	var best string
	bestDist := 3
	for _, name := range declaredNames(code) {
		if name == h.Symbol {
			continue
		}
		if d := editDistance(name, h.Symbol); d < bestDist {
			best, bestDist = name, d
		}
	}
	if best != "" {
		re := regexp.MustCompile(`\b` + regexp.QuoteMeta(h.Symbol) + `\b`)
		out := re.ReplaceAllString(code, best)
		return Outcome{
			Code: out, Applied: true, StructDifficulty: 0.2,
			Note: fmt.Sprintf("renamed '%s' to the declared signal '%s'", h.Symbol, best),
		}
	}
	// 2) Control signal used in an event control: restore the port.
	if regexp.MustCompile(`(posedge|negedge)\s+`+regexp.QuoteMeta(h.Symbol)+`\b`).MatchString(code) ||
		isControlName(h.Symbol) {
		out, ok := addInputPort(code, h.Symbol)
		if ok {
			return Outcome{
				Code: out, Applied: true, StructDifficulty: 0.25,
				Note: fmt.Sprintf("added missing input port '%s' to the module header", h.Symbol),
			}
		}
	}
	// 3) Fallback: declare an internal wire or reg depending on how the
	// symbol is written.
	kind := "wire"
	if regexp.MustCompile(regexp.QuoteMeta(h.Symbol)+`\s*(<=|=)[^=]`).MatchString(code) &&
		strings.Contains(code, "always") {
		kind = "reg"
	}
	out, ok := insertAfterHeader(code, fmt.Sprintf("\t%s %s;", kind, h.Symbol))
	if !ok {
		return failed(code, "could not find the module header")
	}
	return Outcome{
		Code: out, Applied: true, StructDifficulty: 0.45,
		Note: fmt.Sprintf("declared '%s' as an internal %s", h.Symbol, kind),
	}
}

func isControlName(s string) bool {
	switch s {
	case "clk", "clock", "rst", "reset", "areset", "en", "ena", "enable", "load":
		return true
	}
	return false
}

// addInputPort inserts "input <name>," as the first port of the header.
func addInputPort(code, name string) (string, bool) {
	idx := strings.Index(code, "(")
	mod := strings.Index(code, "module")
	if idx < 0 || mod < 0 || idx < mod {
		return code, false
	}
	return code[:idx+1] + "\n\tinput " + name + "," + code[idx+1:], true
}

// insertAfterHeader inserts a line right after the module header's ");".
func insertAfterHeader(code, line string) (string, bool) {
	lines := splitLines(code)
	for i, l := range lines {
		if strings.Contains(l, ");") {
			out := append(lines[:i+1:i+1], append([]string{line}, lines[i+1:]...)...)
			return strings.Join(out, "\n"), true
		}
	}
	return code, false
}

var indexMsgRe = regexp.MustCompile(`index (-?\d+)`)
var rangeMsgRe = regexp.MustCompile(`declared range \[(-?\d+):(-?\d+)\]`)
var negArithRe = regexp.MustCompile(`\(0-1\)\*\d+\s*\+\s*`)

func repairIndex(code string, h Hypothesis) Outcome {
	lines := splitLines(code)
	li := lineAt(lines, h.Line)
	line := lines[li]

	// Hard instance: index arithmetic that folds negative. Recognizing
	// that "(0-1)*K + x" must be deleted is the arithmetic reasoning the
	// paper's failure analysis (Fig. 6) highlights.
	if negArithRe.MatchString(line) {
		fixedLine := negArithRe.ReplaceAllString(line, "")
		lines[li] = fixedLine
		return Outcome{
			Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.92,
			Note: "recomputed the index arithmetic that underflowed at the loop boundary",
		}
	}

	// Bounds from the log, when present.
	msb := -1
	if m := rangeMsgRe.FindStringSubmatch(h.Excerpt); m != nil {
		hi, _ := strconv.Atoi(m[1])
		lo, _ := strconv.Atoi(m[2])
		if hi >= lo {
			msb = hi
		} else {
			msb = lo
		}
	}
	// Literal index beyond the range: clamp to the MSB.
	if m := indexMsgRe.FindStringSubmatch(h.Excerpt); m != nil && msb >= 0 {
		bad := m[1]
		pat := regexp.MustCompile(`\[` + regexp.QuoteMeta(bad) + `\]`)
		if pat.MatchString(line) {
			lines[li] = pat.ReplaceAllString(line, fmt.Sprintf("[%d]", msb))
			return Outcome{
				Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.2,
				Note: fmt.Sprintf("clamped index %s to the declared bound %d", bad, msb),
			}
		}
	}
	// Part-select shifted past the MSB: slide the window back down.
	if m := regexp.MustCompile(`part-select \[(\d+):(\d+)\]`).FindStringSubmatch(h.Excerpt); m != nil && msb >= 0 {
		hi, _ := strconv.Atoi(m[1])
		lo, _ := strconv.Atoi(m[2])
		delta := hi - msb
		if delta > 0 && lo-delta >= 0 {
			pat := regexp.MustCompile(`\[` + regexp.QuoteMeta(m[1]) + `:` + regexp.QuoteMeta(m[2]) + `\]`)
			if pat.MatchString(line) {
				lines[li] = pat.ReplaceAllString(line, fmt.Sprintf("[%d:%d]", hi-delta, lo-delta))
				return Outcome{
					Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.45,
					Note: "slid the part-select window back inside the declared range",
				}
			}
		}
	}
	// Last resort: any literal index on the line one past a [N:0]
	// declaration found in the code.
	if msb >= 0 {
		pat := regexp.MustCompile(`\[(\d+)\]`)
		if m := pat.FindStringSubmatch(line); m != nil {
			if v, _ := strconv.Atoi(m[1]); v > msb {
				lines[li] = strings.Replace(line, "["+m[1]+"]", fmt.Sprintf("[%d]", msb), 1)
				return Outcome{
					Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.35,
					Note: "clamped the out-of-range index on the flagged line",
				}
			}
		}
	}
	return failed(code, "could not resolve the index expression")
}

func repairInvalidLValue(code string, h Hypothesis) Outcome {
	if h.Symbol == "" {
		return failed(code, "log did not name the invalid l-value")
	}
	sym := regexp.QuoteMeta(h.Symbol)
	// output S / output [..] S  ->  output reg ...
	outRe := regexp.MustCompile(`output(\s+(?:\[[^\]]+\]\s*)?)` + sym + `\b`)
	if loc := outRe.FindStringSubmatchIndex(code); loc != nil && !strings.Contains(code[loc[0]:loc[1]], "reg") {
		out := code[:loc[0]] + "output reg" + code[loc[2]:loc[3]] + h.Symbol + code[loc[1]:]
		return Outcome{
			Code: out, Applied: true, StructDifficulty: 0.15,
			Note: fmt.Sprintf("declared output '%s' as reg so the always block may drive it", h.Symbol),
		}
	}
	// wire S; -> reg S;
	wireRe := regexp.MustCompile(`\bwire(\s+(?:\[[^\]]+\]\s*)?` + sym + `\s*;)`)
	if wireRe.MatchString(code) {
		out := wireRe.ReplaceAllString(code, "reg$1")
		return Outcome{
			Code: out, Applied: true, StructDifficulty: 0.15,
			Note: fmt.Sprintf("changed '%s' from wire to reg", h.Symbol),
		}
	}
	return failed(code, fmt.Sprintf("could not find the declaration of '%s'", h.Symbol))
}

func repairAssignToReg(code string, h Hypothesis) Outcome {
	if h.Symbol == "" {
		return failed(code, "log did not name the assigned variable")
	}
	sym := regexp.QuoteMeta(h.Symbol)
	regOutRe := regexp.MustCompile(`output\s+reg(\s+(?:\[[^\]]+\]\s*)?` + sym + `\b)`)
	if regOutRe.MatchString(code) {
		out := regOutRe.ReplaceAllString(code, "output$1")
		return Outcome{
			Code: out, Applied: true, StructDifficulty: 0.15,
			Note: fmt.Sprintf("removed 'reg' from output '%s' so assign may drive it", h.Symbol),
		}
	}
	regDeclRe := regexp.MustCompile(`\breg(\s+(?:\[[^\]]+\]\s*)?` + sym + `\s*;)`)
	if regDeclRe.MatchString(code) {
		out := regDeclRe.ReplaceAllString(code, "wire$1")
		return Outcome{
			Code: out, Applied: true, StructDifficulty: 0.15,
			Note: fmt.Sprintf("changed '%s' from reg to wire", h.Symbol),
		}
	}
	return failed(code, fmt.Sprintf("could not find the reg declaration of '%s'", h.Symbol))
}

var noSemiEnd = regexp.MustCompile(`(;|\bbegin\b|\bend\b|,|\{)\s*$`)

// controlHeader matches lines that legitimately end without a semicolon:
// block and control-flow headers whose statement continues on the next
// line.
var controlHeader = regexp.MustCompile(`^\s*(if\b|else\b|for\b|while\b|case\b|casez\b|casex\b|always\b|initial\b|module\b|end\b|endcase\b|endmodule\b|\))`)

func repairMissingSemicolon(code string, h Hypothesis) Outcome {
	lines := splitLines(code)
	li := lineAt(lines, h.Line)
	// The parser flags the token after the gap; the missing ';' belongs
	// to the previous substantive line (possibly the flagged one itself).
	for i := li; i >= 0 && i >= li-3; i-- {
		t := strings.TrimRight(lines[i], " \t")
		// The semicolon belongs to the code, not to a trailing comment.
		codePart, comment := t, ""
		if idx := strings.Index(t, "//"); idx >= 0 {
			codePart = strings.TrimRight(t[:idx], " \t")
			comment = " " + t[idx:]
		}
		trimmed := strings.TrimSpace(codePart)
		if trimmed == "" {
			continue
		}
		if !noSemiEnd.MatchString(codePart) && !controlHeader.MatchString(codePart) &&
			!strings.HasSuffix(trimmed, "endmodule") {
			lines[i] = codePart + ";" + comment
			return Outcome{
				Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.08,
				Note: fmt.Sprintf("added the missing ';' at line %d", i+1),
			}
		}
		if i < li && trimmed != "endmodule" && trimmed != "end" {
			break // previous line already terminated: not this pattern
		}
	}
	return failed(code, "could not locate the unterminated statement")
}

func repairBeginEnd(code string, h Hypothesis) Outcome {
	if strings.Contains(h.Excerpt, "missing 'endmodule'") ||
		strings.Contains(h.Excerpt, "reached end of file") {
		return repairMissingEndmodule(code, h)
	}
	if strings.Contains(h.Excerpt, "without a matching 'begin'") ||
		strings.Contains(h.Excerpt, "without a matching") && strings.Contains(h.Excerpt, "'end'") {
		lines := splitLines(code)
		li := lineAt(lines, h.Line)
		if strings.TrimSpace(lines[li]) == "end" {
			lines = append(lines[:li], lines[li+1:]...)
			return Outcome{
				Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.2,
				Note: "removed the surplus 'end'",
			}
		}
	}
	// Missing 'end': rebalance by inserting before 'endmodule'.
	begins := countWord(code, "begin")
	ends := countWord(code, "end")
	if begins > ends {
		lines := splitLines(code)
		for i := len(lines) - 1; i >= 0; i-- {
			if strings.Contains(lines[i], "endmodule") {
				insert := make([]string, begins-ends)
				for j := range insert {
					insert[j] = "\tend"
				}
				out := append(lines[:i:i], append(insert, lines[i:]...)...)
				return Outcome{
					Code: strings.Join(out, "\n"), Applied: true, StructDifficulty: 0.3,
					Note: fmt.Sprintf("inserted %d missing 'end' before endmodule", begins-ends),
				}
			}
		}
	}
	return failed(code, "could not rebalance begin/end")
}

// countWord counts whole-word occurrences (so "end" does not count
// "endmodule" or "endcase").
func countWord(code, word string) int {
	re := regexp.MustCompile(`\b` + word + `\b`)
	return len(re.FindAllString(code, -1))
}

func repairMissingEndmodule(code string, _ Hypothesis) Outcome {
	// Close any open begin blocks first, then the module.
	begins := countWord(code, "begin")
	ends := countWord(code, "end")
	var b strings.Builder
	b.WriteString(strings.TrimRight(code, " \t\n"))
	for i := 0; i < begins-ends; i++ {
		b.WriteString("\nend")
	}
	b.WriteString("\nendmodule\n")
	return Outcome{
		Code: b.String(), Applied: true, StructDifficulty: 0.08,
		Note: "appended the missing 'endmodule'",
	}
}

var (
	incRe      = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)\s*\+\+`)
	decRe      = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)\s*--`)
	compoundRe = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)\s*([+\-*/&|^])=\s*`)
)

func repairCStyle(code string, h Hypothesis) Outcome {
	lines := splitLines(code)
	li := lineAt(lines, h.Line)
	// Scan the flagged line first, then the whole file — C idioms travel
	// in groups, and one compile round should clear them all.
	changed := false
	for i := range lines {
		orig := lines[i]
		lines[i] = incRe.ReplaceAllString(lines[i], "$1 = $1 + 1")
		lines[i] = decRe.ReplaceAllString(lines[i], "$1 = $1 - 1")
		lines[i] = compoundRe.ReplaceAllString(lines[i], "$1 = $1 $2 ")
		if lines[i] != orig {
			changed = true
		}
	}
	// Brace blocks: '{' at line end after ')' or else -> begin, matching
	// lone '}' -> end.
	for i := range lines {
		t := strings.TrimRight(lines[i], " \t")
		if strings.HasSuffix(t, "{") && (strings.Contains(t, ")") || strings.Contains(t, "else")) {
			lines[i] = strings.TrimSuffix(t, "{") + "begin"
			changed = true
			depth := 1
			for j := i + 1; j < len(lines); j++ {
				tj := strings.TrimSpace(lines[j])
				if strings.HasSuffix(strings.TrimRight(lines[j], " \t"), "{") {
					depth++
				}
				if tj == "}" {
					depth--
					if depth == 0 {
						lines[j] = strings.Replace(lines[j], "}", "end", 1)
						break
					}
				}
			}
		}
	}
	if !changed {
		return failed(code, "no C-style construct found to rewrite")
	}
	_ = li
	return Outcome{
		Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.18,
		Note: "rewrote C-style operators/blocks into Verilog syntax",
	}
}

func repairDeleteLine(code string, h Hypothesis, note string) Outcome {
	lines := splitLines(code)
	li := lineAt(lines, h.Line)
	if strings.TrimSpace(lines[li]) == "" {
		return failed(code, "flagged line is empty")
	}
	lines = append(lines[:li], lines[li+1:]...)
	return Outcome{
		Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.1,
		Note: note,
	}
}

var literalFixRe = regexp.MustCompile(`(\d+)'([bodh])([0-9a-zA-Z_?]+)`)

func repairLiteral(code string, h Hypothesis) Outcome {
	lines := splitLines(code)
	li := lineAt(lines, h.Line)
	line := lines[li]
	m := literalFixRe.FindStringSubmatchIndex(line)
	if m == nil {
		return failed(code, "no literal found on the flagged line")
	}
	base := line[m[4]:m[5]]
	digits := line[m[6]:m[7]]
	var valid string
	switch base {
	case "b":
		valid = "01_"
	case "o":
		valid = "01234567_"
	case "d":
		valid = "0123456789_"
	case "h":
		valid = "0123456789abcdefABCDEF_"
	}
	var cleaned strings.Builder
	for _, c := range digits {
		if strings.ContainsRune(valid, c) {
			cleaned.WriteRune(c)
		}
	}
	if cleaned.Len() == 0 {
		cleaned.WriteByte('0')
	}
	lines[li] = line[:m[6]] + cleaned.String() + line[m[7]:]
	return Outcome{
		Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.15,
		Note: "removed the digits that are illegal for the literal's base",
	}
}

func repairSensitivity(code string, h Hypothesis) Outcome {
	lines := splitLines(code)
	li := lineAt(lines, h.Line)
	// Find the nearest 'always' at or before the flagged line that lacks
	// an '@'.
	for i := li; i >= 0; i-- {
		t := lines[i]
		if strings.Contains(t, "always") && !strings.Contains(t, "@") {
			event := " @(*)"
			if strings.Contains(code, "<=") && headerHasSignal(code, "clk") {
				event = " @(posedge clk)"
			}
			lines[i] = strings.Replace(t, "always", "always"+event, 1)
			return Outcome{
				Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.2,
				Note: "added the missing event control to the always block",
			}
		}
	}
	return failed(code, "could not find the always block missing its event control")
}

func headerHasSignal(code, name string) bool {
	return regexp.MustCompile(`\binput\b[^;\n)]*\b` + regexp.QuoteMeta(name) + `\b`).MatchString(code)
}

func repairPortMismatch(code string, h Hypothesis) Outcome {
	if strings.Contains(h.Excerpt, "expected a port name") {
		// A deleted port left a dangling comma before ')'.
		lines := splitLines(code)
		li := lineAt(lines, h.Line)
		for i := li; i >= 0 && i >= li-3; i-- {
			t := strings.TrimRight(lines[i], " \t")
			if strings.HasSuffix(t, ",") {
				lines[i] = strings.TrimSuffix(t, ",")
				return Outcome{
					Code: strings.Join(lines, "\n"), Applied: true, StructDifficulty: 0.15,
					Note: "removed the dangling comma in the port list",
				}
			}
		}
	}
	if h.Symbol == "" {
		return failed(code, "log did not name the port")
	}
	switch {
	case strings.Contains(h.Excerpt, "no direction declaration"):
		out, ok := insertAfterHeader(code, "\tinput "+h.Symbol+";")
		if !ok {
			return failed(code, "could not find the module header")
		}
		return Outcome{
			Code: out, Applied: true, StructDifficulty: 0.35,
			Note: fmt.Sprintf("declared a direction for port '%s'", h.Symbol),
		}
	case strings.Contains(h.Excerpt, "does not appear in the module port list"):
		idx := strings.Index(code, "(")
		if idx < 0 {
			return failed(code, "could not find the port list")
		}
		out := code[:idx+1] + h.Symbol + ", " + code[idx+1:]
		return Outcome{
			Code: out, Applied: true, StructDifficulty: 0.3,
			Note: fmt.Sprintf("added '%s' to the module port list", h.Symbol),
		}
	}
	return failed(code, "port conflict requires interface redesign")
}

func repairModuleStructure(code string, h Hypothesis) Outcome {
	if strings.Contains(h.Excerpt, "without a matching 'module'") {
		return repairDeleteLine(code, h, "removed the stray 'endmodule'")
	}
	if strings.Contains(h.Excerpt, "outside of any module") {
		return repairDeleteLine(code, h, "removed the statement that sat outside the module")
	}
	return failed(code, "module structure damage too severe for a local fix")
}

// repairGenericSyntax is the low-information fallback for bare "syntax
// error" hypotheses: try the most common cause (a missing semicolon on or
// above the flagged line), otherwise rewrite obvious C idioms.
func repairGenericSyntax(code string, h Hypothesis) Outcome {
	if out := repairCStyle(code, h); out.Applied {
		out.StructDifficulty = 0.4
		return out
	}
	if out := repairMissingSemicolon(code, h); out.Applied {
		out.StructDifficulty = 0.5
		return out
	}
	begins, ends := countWord(code, "begin"), countWord(code, "end")
	if begins != ends {
		if out := repairBeginEnd(code, h); out.Applied {
			out.StructDifficulty = 0.5
			return out
		}
	}
	return failed(code, "could not infer the cause from a bare syntax error")
}

// ---------- damage model ----------

// botch applies a plausible-but-wrong edit: what an LLM does when it
// confidently "fixes" the wrong thing. The damage sometimes introduces a
// brand-new error, which One-shot prompting cannot recover from.
func botch(code string, rng *rand.Rand) (string, string) {
	lines := splitLines(code)
	var candidates []int
	inHeader := true
	for i, l := range lines {
		t := strings.TrimSpace(l)
		if strings.Contains(t, ");") {
			if inHeader {
				inHeader = false
				continue
			}
		}
		if inHeader || t == "" || t == "endmodule" || strings.HasPrefix(t, "module") {
			continue
		}
		candidates = append(candidates, i)
	}
	if len(candidates) == 0 {
		return code, "made no change"
	}
	i := candidates[rng.Intn(len(candidates))]
	switch rng.Intn(4) {
	case 0: // delete a line it wrongly blames
		lines = append(lines[:i], lines[i+1:]...)
		return strings.Join(lines, "\n"), fmt.Sprintf("deleted line %d", i+1)
	case 1: // duplicate a statement
		lines = append(lines[:i+1:i+1], append([]string{lines[i]}, lines[i+1:]...)...)
		return strings.Join(lines, "\n"), fmt.Sprintf("duplicated line %d", i+1)
	case 2: // drop a semicolon
		if strings.Contains(lines[i], ";") {
			lines[i] = strings.Replace(lines[i], ";", "", 1)
			return strings.Join(lines, "\n"), fmt.Sprintf("mangled line %d", i+1)
		}
		return code, "made no change"
	default: // cosmetic rewrite that fixes nothing
		lines[i] = lines[i] + " // revised"
		return strings.Join(lines, "\n"), fmt.Sprintf("rewrote line %d without fixing it", i+1)
	}
}
