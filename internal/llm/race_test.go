package llm

import (
	"fmt"
	"sync"
	"testing"
)

// TestModelConcurrentRepair exercises one shared Model from many
// goroutines under -race: the internal mutex must serialize the random
// source. (Determinism still requires one Model per run — this test
// asserts memory safety, not roll order.)
func TestModelConcurrentRepair(t *testing.T) {
	m := NewModel(GPT35(), 11)
	src := "module top_module(output reg q);\n always @(*) q = x\nendmodule\n"
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res := m.Repair(RepairRequest{
					Code:       src,
					Feedback:   fmt.Sprintf("error: syntax error near line %d", 2+g%2),
					SampleSeed: int64(g*100 + i),
					Iteration:  i % 3,
				})
				if res.Code == "" {
					t.Error("empty repair result")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
