package llm

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/diag"
	"repro/internal/rag"
)

// Persona parameterizes the simulated model. The two stock personas mirror
// the paper's GPT-3.5 and GPT-4 ablation (§4.3.2): the stronger persona
// has high base competence everywhere and strong blind inspection, which
// is why its One-shot and ReAct results nearly coincide in Table 1.
type Persona struct {
	// Name appears in tables and transcripts.
	Name string
	// Competence maps categories to the probability of correctly
	// executing that category's repair strategy once localized, before
	// difficulty and guidance adjustments.
	Competence map[diag.Category]float64
	// DefaultCompetence applies to categories missing from Competence.
	DefaultCompetence float64
	// DifficultyWeight scales how much an instance's structural
	// difficulty depresses the success probability.
	DifficultyWeight float64
	// ReadSkill scales log-hypothesis confidence into localization
	// probability.
	ReadSkill float64
	// BlindSkill scales blind-hypothesis confidence.
	BlindSkill float64
	// BlindAcuity is the floor-raising term for blind inspection: strong
	// models spot subtle defects (masked second errors) that weak models
	// need a compiler to find. pLoc = conf*BlindSkill + BlindAcuity*(1-conf).
	BlindAcuity float64
	// ThoughtBonus is added to localization and execution when ReAct
	// intermediate reasoning is enabled (the chain-of-thought effect that
	// lifts even the Simple-feedback column).
	ThoughtBonus float64
	// GuidanceGain is the fraction of the remaining gap to 0.98 closed
	// when retrieved guidance matches the error category.
	GuidanceGain float64
	// HallucinationRate is the chance a repair round ends with an extra
	// damaging edit. Guidance halves it.
	HallucinationRate float64
}

// GPT35 returns the gpt-3.5-turbo-like persona. Weak spots follow the
// paper's failure analysis: index arithmetic and non-constant rewrites
// need reasoning the model lacks; mechanical fixes are reliable.
func GPT35() Persona {
	return Persona{
		Name: "gpt-3.5",
		Competence: map[diag.Category]float64{
			diag.CatMissingSemicolon:   0.92,
			diag.CatMissingEndmodule:   0.95,
			diag.CatMisplacedDirective: 0.93,
			diag.CatDuplicateDecl:      0.90,
			diag.CatKeywordAsIdent:     0.85,
			diag.CatMalformedLiteral:   0.85,
			diag.CatCStyleSyntax:       0.82,
			diag.CatInvalidLValue:      0.80,
			diag.CatAssignToReg:        0.80,
			diag.CatSensitivityList:    0.78,
			diag.CatUndeclaredIdent:    0.74,
			diag.CatUnmatchedBeginEnd:  0.72,
			diag.CatIndexOutOfRange:    0.62,
			diag.CatPortMismatch:       0.68,
			diag.CatUnexpectedToken:    0.62,
			diag.CatModuleStructure:    0.55,
			diag.CatNonConstantExpr:    0.30,
			diag.CatBadConcat:          0.50,
			diag.CatGiveUp:             0.45,
		},
		DefaultCompetence: 0.55,
		DifficultyWeight:  0.55,
		ReadSkill:         0.97,
		BlindSkill:        0.95,
		BlindAcuity:       0.12,
		ThoughtBonus:      0.12,
		GuidanceGain:      0.95,
		HallucinationRate: 0.04,
	}
}

// GPT4 returns the GPT-4-like persona: uniformly strong, low
// hallucination, and blind inspection nearly as good as a compiler log —
// the reason ReAct adds only ~1 point over One-shot for it.
func GPT4() Persona {
	return Persona{
		Name:              "gpt-4",
		Competence:        map[diag.Category]float64{diag.CatNonConstantExpr: 0.75, diag.CatIndexOutOfRange: 0.88},
		DefaultCompetence: 0.98,
		DifficultyWeight:  0.15,
		ReadSkill:         1.0,
		BlindSkill:        0.98,
		BlindAcuity:       0.80,
		ThoughtBonus:      0.04,
		GuidanceGain:      0.92,
		HallucinationRate: 0.005,
	}
}

// PersonaByName resolves "gpt-3.5" / "gpt-4".
func PersonaByName(name string) (Persona, bool) {
	switch strings.ToLower(name) {
	case "gpt-3.5", "gpt-3.5-turbo", "gpt3.5":
		return GPT35(), true
	case "gpt-4", "gpt4":
		return GPT4(), true
	}
	return Persona{}, false
}

func (p Persona) competence(c diag.Category) float64 {
	if v, ok := p.Competence[c]; ok {
		return v
	}
	return p.DefaultCompetence
}

// RepairRequest is one "please fix this code" turn.
type RepairRequest struct {
	// Code is the current erroneous source.
	Code string
	// Feedback is the compiler message the model sees (persona-formatted
	// log, or the Simple instruction).
	Feedback string
	// Guidance holds retrieved RAG entries, empty without RAG.
	Guidance []rag.Entry
	// Thought enables ReAct intermediate reasoning.
	Thought bool
	// SampleSeed identifies the problem instance. Capability rolls are
	// deterministic per (sample, category, persona): retrying the same
	// failed category on the same sample keeps failing, which is what
	// keeps 10 ReAct iterations from trivially fixing everything.
	SampleSeed int64
	// Iteration is the ReAct round number (adds fresh per-round jitter).
	Iteration int
}

// RepairResult is the model's revision.
type RepairResult struct {
	Code string
	// Notes describes the edits, in transcript-ready prose.
	Notes []string
	// Attempted counts hypotheses the model acted on.
	Attempted int
}

// Model is a simulated LLM with a random source. A mutex serializes
// Repair calls so a Model shared across goroutines is memory-safe —
// but the roll sequence then depends on arrival order, so for
// reproducible transcripts still create one Model per run (as
// core.FixTraced does, seeding each with Seed^sampleSeed).
type Model struct {
	Persona Persona
	mu      sync.Mutex
	rng     *rand.Rand
}

// NewModel builds a model with a deterministic seed.
func NewModel(p Persona, seed int64) *Model {
	return &Model{Persona: p, rng: rand.New(rand.NewSource(seed))}
}

// aptitude returns the stable per-(sample, category) uniform draw in
// [0,1): the model's intrinsic ability on this instance. Deterministic so
// ReAct retries of an identical repair stay failed.
func (m *Model) aptitude(seed int64, cat diag.Category) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", seed, cat, m.Persona.Name)
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Repair produces a revised version of the code. It merges hypotheses from
// the compiler log with blind visual inspection, then for each hypothesis
// rolls localization and strategy execution, applying real text edits.
func (m *Model) Repair(req RepairRequest) RepairResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.Persona
	res := RepairResult{Code: req.Code}

	// Gather hypotheses. Log-derived ones carry the feedback quality;
	// blind ones depend only on the model.
	var hyps []Hypothesis
	for _, h := range AnalyzeLog(req.Feedback) {
		h.Confidence = clamp01(h.Confidence * p.ReadSkill)
		hyps = append(hyps, h)
	}
	thoughtBoost := 0.0
	if req.Thought {
		thoughtBoost = p.ThoughtBonus
	}
	for _, h := range BlindHypotheses(req.Code) {
		h.Confidence = clamp01(h.Confidence*p.BlindSkill + p.BlindAcuity*(1-h.Confidence) + thoughtBoost*0.5)
		hyps = append(hyps, h)
	}
	hyps = dedupHypotheses(hyps)

	if len(hyps) == 0 {
		// Nothing spotted: flail. Half the time the model rewrites
		// something harmlessly, half the time it damages the code.
		if m.rng.Float64() < 0.5 {
			code, note := botch(res.Code, m.rng)
			res.Code = code
			res.Notes = append(res.Notes, "no clear fault found; "+note)
		} else {
			res.Notes = append(res.Notes, "no clear fault found; returned the code unchanged")
		}
		return res
	}

	guidanceByCat := map[diag.Category]bool{}
	for _, e := range req.Guidance {
		guidanceByCat[e.Category] = true
		// Guidance generalizes within its syntax family: advice about a
		// missing semicolon helps with any bare "syntax error" hypothesis
		// and vice versa, since the repair playbook is shared.
		for _, rel := range categoryFamily(e.Category) {
			guidanceByCat[rel] = true
		}
	}

	for _, h := range hyps {
		// Localization roll: does the model act on this hypothesis?
		// Matching guidance helps find the error, not just fix it — the
		// retrieved entries say where this class of fault lives. Like
		// execution, localization is mostly a persistent per-sample
		// aptitude: iterating without new information does not reveal an
		// error the model cannot see; only fresh feedback, reasoning, or
		// guidance moves pLoc.
		pLoc := clamp01(h.Confidence + thoughtBoost*0.6)
		if guidanceByCat[h.Category] {
			pLoc += 0.6 * (0.97 - pLoc)
		}
		uLoc := m.aptitude(req.SampleSeed*2654435761+1, h.Category)
		locJitter := m.rng.NormFloat64() * 0.04
		if uLoc >= pLoc+locJitter {
			continue
		}
		res.Attempted++
		out := applyStrategy(res.Code, h)
		if !out.Applied {
			// The strategy had no structural purchase; occasionally the
			// model hacks at the code anyway.
			if m.rng.Float64() < 0.15 {
				code, note := botch(res.Code, m.rng)
				res.Code = code
				res.Notes = append(res.Notes, out.Note+"; "+note)
			} else {
				res.Notes = append(res.Notes, out.Note)
			}
			continue
		}
		// Execution roll: aptitude vs adjusted competence.
		pExec := p.competence(h.Category) - p.DifficultyWeight*out.StructDifficulty + thoughtBoost*0.3
		if guidanceByCat[h.Category] {
			pExec += p.GuidanceGain * (0.99 - pExec)
		}
		// Iterative refinement: each ReAct round adds context (earlier
		// observations stay in the prompt), slowly lifting competence —
		// the late-iteration rescues in Figure 7's tail.
		pExec += 0.005 * float64(req.Iteration)
		pExec = clamp01(pExec)
		u := m.aptitude(req.SampleSeed, h.Category)
		jitter := m.rng.NormFloat64() * 0.04 // fresh per round: the Fig. 7 tail
		if u < pExec+jitter {
			res.Code = out.Code
			res.Notes = append(res.Notes, out.Note)
		} else {
			// Confidently wrong: the model "fixes" something else.
			if m.rng.Float64() < 0.15 {
				code, note := botch(res.Code, m.rng)
				res.Code = code
				res.Notes = append(res.Notes, "misdiagnosed the error; "+note)
			} else {
				res.Notes = append(res.Notes, "attempted a fix that did not address the error")
			}
		}
	}

	// Hallucination: a final destructive flourish.
	hall := p.HallucinationRate
	if len(req.Guidance) > 0 {
		hall /= 2
	}
	if m.rng.Float64() < hall {
		code, note := botch(res.Code, m.rng)
		res.Code = code
		res.Notes = append(res.Notes, "hallucinated an extra change: "+note)
	}
	if len(res.Notes) == 0 {
		res.Notes = append(res.Notes, "reviewed the diagnostics but made no change")
	}
	return res
}

// dedupHypotheses keeps the highest-confidence hypothesis per
// (line, category) and orders the result by confidence.
func dedupHypotheses(hyps []Hypothesis) []Hypothesis {
	type key struct {
		line int
		cat  diag.Category
	}
	best := map[key]Hypothesis{}
	for _, h := range hyps {
		k := key{h.Line, h.Category}
		if prev, ok := best[k]; !ok || h.Confidence > prev.Confidence {
			best[k] = h
		}
	}
	out := make([]Hypothesis, 0, len(best))
	for _, h := range best {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// Thought renders a ReAct Thought line for the current situation, for
// transcripts (Fig. 2c style).
func Thought(feedback string, hyps []Hypothesis) string {
	if len(hyps) == 0 {
		if strings.TrimSpace(feedback) == "" || strings.Contains(feedback, "Correct the syntax error") {
			return "The compiler gave no details. I will inspect the code for common Verilog syntax mistakes."
		}
		return "The log is uninformative. I will re-read the code structure around the reported lines."
	}
	h := hyps[0]
	switch h.Category {
	case diag.CatUndeclaredIdent:
		return fmt.Sprintf("The code references '%s' which is never declared. I should declare it or fix the name, then recompile.", h.Symbol)
	case diag.CatInvalidLValue:
		return fmt.Sprintf("The signal '%s' is driven inside an always block but is declared as a wire. It must become a reg, or the block an assign.", h.Symbol)
	case diag.CatIndexOutOfRange:
		return "An index falls outside the declared vector range. I need to recompute the index bounds."
	case diag.CatCStyleSyntax:
		return "The code uses C operators that Verilog lacks. I will expand them into full assignments."
	case diag.CatUnmatchedBeginEnd:
		return "The begin/end blocks are unbalanced. I will close the open block."
	case diag.CatMissingSemicolon:
		return "A statement is missing its semicolon near the reported line."
	default:
		return fmt.Sprintf("The first error is %s at line %d. I will fix it and recompile.", h.Category, h.Line)
	}
}

// categoryFamily lists categories whose repair playbooks overlap enough
// that guidance for one transfers to the others (all the parse-level
// syntax classes form one family; everything else stands alone).
func categoryFamily(c diag.Category) []diag.Category {
	syntaxFamily := []diag.Category{
		diag.CatUnexpectedToken, diag.CatMissingSemicolon,
		diag.CatCStyleSyntax, diag.CatMalformedLiteral,
		diag.CatUnmatchedBeginEnd, diag.CatMissingEndmodule,
		diag.CatModuleStructure, diag.CatGiveUp, diag.CatBadConcat,
		diag.CatKeywordAsIdent, diag.CatSensitivityList,
		diag.CatMisplacedDirective,
	}
	for _, s := range syntaxFamily {
		if c == s {
			return syntaxFamily
		}
	}
	return nil
}
