package llm

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/diag"
)

func TestRepairSurplusEnd(t *testing.T) {
	assertRepairCompiles(t, `module m(input a, output reg y);
	always @(*) begin
		y = a;
	end
	end
endmodule`)
}

func TestRepairMissingEndInsertedBeforeEndmodule(t *testing.T) {
	assertRepairCompiles(t, `module m(input clk, input a, output reg y);
	always @(posedge clk) begin
		if (a)
			y <= 1;
endmodule`)
}

func TestRepairMalformedLiteral(t *testing.T) {
	assertRepairCompiles(t, `module m(output [7:0] y);
	assign y = 8'hgg;
endmodule`)
}

func TestRepairMalformedBinaryLiteral(t *testing.T) {
	assertRepairCompiles(t, `module m(output [3:0] y);
	assign y = 4'b1012;
endmodule`)
}

func TestRepairStrayEndmodule(t *testing.T) {
	assertRepairCompiles(t, `module m(input a, output y);
	assign y = a;
endmodule
endmodule`)
}

func TestRepairSliceOverflow(t *testing.T) {
	assertRepairCompiles(t, `module m(input [15:0] in, output [15:0] out);
	assign out = {in[7:0], in[16:9]};
endmodule`)
}

func TestRepairCStyleBraces(t *testing.T) {
	assertRepairCompiles(t, `module m(input a, input b, output reg y);
	always @(*) begin
		if (a) {
			y = b;
		}
		else
			y = 0;
	end
endmodule`)
}

func TestRepairGenericSyntaxFallsBackToSemicolon(t *testing.T) {
	// An iverilog-style bare "syntax error" hypothesis must still find
	// the missing semicolon through the generic strategy.
	code := `module m(input a, output y);
	assign y = a
endmodule`
	res := compiler.IVerilog{}.Compile("main.v", code)
	hyps := AnalyzeLog(res.Log)
	if len(hyps) == 0 {
		t.Fatalf("no hypotheses from: %s", res.Log)
	}
	out := applyStrategy(code, hyps[0])
	if !out.Applied {
		t.Fatalf("generic strategy did not apply: %s", out.Note)
	}
	if c := (compiler.IVerilog{}).Compile("main.v", out.Code); !c.Ok {
		t.Fatalf("generic repair failed:\n%s\n%s", out.Code, c.Log)
	}
}

func TestRepairFromIVerilogLValueLog(t *testing.T) {
	// iverilog names the symbol in plain words ("out is not a valid
	// l-value"); the extraction path differs from Quartus's quotes.
	code := `module top_module(input a, output out);
	always @(*) out = a;
endmodule`
	res := compiler.IVerilog{}.Compile("main.v", code)
	hyps := AnalyzeLog(res.Log)
	if len(hyps) == 0 || hyps[0].Symbol != "out" {
		t.Fatalf("symbol extraction failed: %+v from %q", hyps, res.Log)
	}
	out := applyStrategy(code, hyps[0])
	if !out.Applied {
		t.Fatalf("strategy failed: %s", out.Note)
	}
	if c := (compiler.IVerilog{}).Compile("main.v", out.Code); !c.Ok {
		t.Fatalf("repair failed:\n%s", out.Code)
	}
}

func TestRepairUndeclaredFallbackDeclares(t *testing.T) {
	// No similar name, not a control name, not in a sensitivity list:
	// the fallback declares an internal net.
	code := `module m(input a, output y);
	assign y = a & scratchxyz;
endmodule`
	h := quartusHyp(t, code)
	out := applyStrategy(code, h)
	if !out.Applied {
		t.Fatalf("fallback did not apply: %s", out.Note)
	}
	if !strings.Contains(out.Code, "wire scratchxyz;") {
		t.Fatalf("expected an internal declaration:\n%s", out.Code)
	}
}

func TestBotchNeverTouchesHeader(t *testing.T) {
	code := `module m(
	input a,
	input b,
	output y
);
	assign y = a & b;
	wire t1;
	wire t2;
endmodule`
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		out, _ := botch(code, rng)
		for _, port := range []string{"input a", "input b", "output y"} {
			if !strings.Contains(out, port) {
				t.Fatalf("botch damaged the port list (lost %q):\n%s", port, out)
			}
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"data", "data_r", 2},
		{"clk", "clock", 2},
		{"out", "in", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDeclaredNames(t *testing.T) {
	code := `module m(
	input clk,
	input [7:0] data_in,
	output reg [7:0] q
);
	wire [3:0] tmp;
	integer i;
endmodule`
	names := declaredNames(code)
	want := map[string]bool{"clk": true, "data_in": true, "q": true, "tmp": true, "i": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing declared names: %v (got %v)", want, names)
	}
}

func TestProposeLogicEditProducesCompilingVariant(t *testing.T) {
	src := `module m(input clk, input reset, output reg [7:0] q);
	always @(posedge clk) begin
		if (reset)
			q <= 0;
		else
			q <= q + 1;
	end
endmodule`
	rng := rand.New(rand.NewSource(4))
	changed := 0
	for i := 0; i < 30; i++ {
		out := ProposeLogicEdit(src, rng)
		if out != src {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("ProposeLogicEdit never produced an edit")
	}
}

func TestSampleKindStrings(t *testing.T) {
	if KindPass.String() != "pass" || KindSyntaxErr.String() != "syntax-error" ||
		KindSimErr.String() != "simulation-error" {
		t.Fatal("kind strings wrong")
	}
}

func TestRatesForCoversAllSuites(t *testing.T) {
	for _, suite := range []string{"machine", "human", "rtllm", "unknown"} {
		for _, diff := range []string{"easy", "hard"} {
			r := RatesFor(suite, diff)
			if r.Pass < 0 || r.Pass > 1 || r.SyntaxGivenFail < 0 || r.SyntaxGivenFail > 1 {
				t.Errorf("RatesFor(%s,%s) out of range: %+v", suite, diff, r)
			}
		}
	}
	if RatesFor("human", "easy").Pass <= RatesFor("human", "hard").Pass {
		t.Error("easy must pass more often than hard")
	}
}

func TestThoughtCoversCategories(t *testing.T) {
	cats := []diag.Category{
		diag.CatUndeclaredIdent, diag.CatInvalidLValue, diag.CatIndexOutOfRange,
		diag.CatCStyleSyntax, diag.CatUnmatchedBeginEnd, diag.CatMissingSemicolon,
		diag.CatDuplicateDecl,
	}
	seen := map[string]bool{}
	for _, c := range cats {
		got := Thought("log", []Hypothesis{{Category: c, Symbol: "x", Line: 3, Confidence: 0.9}})
		if got == "" {
			t.Fatalf("empty thought for %s", c)
		}
		seen[got] = true
	}
	if len(seen) < 5 {
		t.Errorf("thoughts not differentiated: %d distinct for %d categories", len(seen), len(cats))
	}
}

func TestRepairDeterministicAcrossStrategies(t *testing.T) {
	// applyStrategy is pure: same inputs, same outputs.
	code := `module m(input a, output out);
	always @(*) out = a;
endmodule`
	h := quartusHyp(t, code)
	a := applyStrategy(code, h)
	b := applyStrategy(code, h)
	if a.Code != b.Code || a.Applied != b.Applied {
		t.Fatal("applyStrategy not deterministic")
	}
}
