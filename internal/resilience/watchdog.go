package resilience

import (
	"fmt"
	"time"
)

// WatchdogError reports a tripped watchdog: a simulation that exceeded
// its wall-clock or cycle allowance and was canceled mid-settle.
type WatchdogError struct {
	Wall    bool          // true: wall-clock limit; false: step limit
	Elapsed time.Duration // wall time consumed when tripped
	Steps   int64         // steps consumed when tripped
}

func (e *WatchdogError) Error() string {
	if e.Wall {
		return fmt.Sprintf("watchdog: wall-clock budget exceeded after %v (%d steps)", e.Elapsed.Round(time.Millisecond), e.Steps)
	}
	return fmt.Sprintf("watchdog: step budget exceeded at %d steps (%v elapsed)", e.Steps, e.Elapsed.Round(time.Millisecond))
}

// IsWatchdog reports whether err is a watchdog trip.
func IsWatchdog(err error) bool {
	_, ok := err.(*WatchdogError)
	return ok
}

// Watchdog bounds a simulation run by wall clock and/or step count. It
// is single-goroutine state (a Simulator instance is not concurrent);
// a nil *Watchdog is a free no-op, which keeps the sim hot path
// zero-cost when no budget is set.
type Watchdog struct {
	start    time.Time
	wall     time.Duration // 0 = no wall limit
	maxSteps int64         // 0 = no step limit
	steps    int64
	now      func() time.Time // test seam; nil means time.Now
}

// NewWatchdog returns a watchdog armed now. Zero disables a limit.
func NewWatchdog(wall time.Duration, maxSteps int64) *Watchdog {
	return &Watchdog{start: time.Now(), wall: wall, maxSteps: maxSteps}
}

func (w *Watchdog) clock() time.Time {
	if w.now != nil {
		return w.now()
	}
	return time.Now()
}

// Step consumes n steps and checks both budgets. Nil receiver: no-op.
func (w *Watchdog) Step(n int64) error {
	if w == nil {
		return nil
	}
	w.steps += n
	return w.Check()
}

// Check reports a budget violation without consuming steps. Nil
// receiver: no-op. It is called inside the engine's settle loop, so a
// simulation stalled mid-settle is canceled there, not merely at the
// next cycle boundary.
func (w *Watchdog) Check() error {
	if w == nil {
		return nil
	}
	if w.maxSteps > 0 && w.steps > w.maxSteps {
		return &WatchdogError{Wall: false, Elapsed: w.clock().Sub(w.start), Steps: w.steps}
	}
	if w.wall > 0 {
		if el := w.clock().Sub(w.start); el > w.wall {
			return &WatchdogError{Wall: true, Elapsed: el, Steps: w.steps}
		}
	}
	return nil
}
