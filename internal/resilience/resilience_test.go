package resilience

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestRetryRecovers: transient failures are retried with backoff and
// the stats record the recovery.
func TestRetryRecovers(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
		Rand:  func() float64 { return 1.0 },
	}
	calls := 0
	st, err := p.Do(func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if st.Attempts != 3 || st.Retries != 2 || !st.Recovered {
		t.Fatalf("stats = %+v", st)
	}
	// Full jitter with Rand()=1: exactly the exponential ceilings.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	for i, d := range slept {
		if d != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, d, want[i])
		}
	}
}

// TestRetryPermanentFailsFast: non-transient errors are never retried.
func TestRetryPermanentFailsFast(t *testing.T) {
	calls := 0
	st, err := RetryPolicy{Sleep: func(time.Duration) {}}.Do(func() error {
		calls++
		return errors.New("permanent")
	})
	if err == nil || calls != 1 || st.Retries != 0 {
		t.Fatalf("err=%v calls=%d stats=%+v", err, calls, st)
	}
}

// TestRetryExhaustsAttempts: a persistently transient error fails after
// MaxAttempts with the last error.
func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	st, err := RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}.Do(func() error {
		calls++
		return MarkTransient(errors.New("always down"))
	})
	if err == nil || calls != 3 || st.Attempts != 3 || st.Recovered {
		t.Fatalf("err=%v calls=%d stats=%+v", err, calls, st)
	}
	if !IsTransient(err) {
		t.Fatal("final error lost its transient mark")
	}
}

// TestRetryBudget: a shared budget stops retries across calls even when
// per-call attempts remain.
func TestRetryBudget(t *testing.T) {
	b := NewBudget(3)
	p := RetryPolicy{MaxAttempts: 10, Budget: b, Sleep: func(time.Duration) {}}
	fail := func() error { return MarkTransient(errors.New("down")) }

	_, err := p.Do(fail) // burns all 3 budget retries, then stops
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v", err)
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining = %d", b.Remaining())
	}
	st, err := p.Do(fail) // budget empty: one attempt, no retry
	if err == nil || st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("post-budget: err=%v stats=%+v", err, st)
	}
	// nil budget is unlimited.
	var nb *Budget
	if !nb.Take() || nb.Remaining() == 0 {
		t.Fatal("nil budget should be unlimited")
	}
}

// TestBreakerLifecycle: closed → open at the threshold → rejects during
// cooldown → half-open probe → success recloses.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3, Cooldown: time.Minute, HalfOpenProbes: 1,
		Now: func() time.Time { return now },
	})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected")
		}
		b.Failure()
	}
	if b.State() != StateClosed {
		t.Fatalf("state after 2 failures = %v", b.State())
	}
	b.Failure() // third consecutive: opens
	if b.State() != StateOpen || b.Allow() {
		t.Fatal("breaker should be open and rejecting")
	}
	now = now.Add(30 * time.Second)
	if b.Allow() {
		t.Fatal("mid-cooldown call allowed")
	}
	now = now.Add(31 * time.Second) // cooldown elapsed → half-open
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open probe rejected")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed with HalfOpenProbes=1")
	}
	b.Success()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("probe success did not reclose")
	}
	snap := b.Snapshot()
	if snap.Opens != 1 || snap.Rejected != 3 || snap.State != "closed" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe restarts the
// cooldown immediately.
func TestBreakerProbeFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute,
		Now: func() time.Time { return now }})
	b.Failure()
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Failure()
	if b.State() != StateOpen || b.Allow() {
		t.Fatal("failed probe should reopen")
	}
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe window rejected")
	}
}

// TestSafeCapturesPanic: Safe converts a panic into a *PanicError with
// site and stack; a clean fn returns nil.
func TestSafeCapturesPanic(t *testing.T) {
	err := Safe("test.site", func() { panic("boom") })
	pe, ok := AsPanic(err)
	if !ok || pe.Site != "test.site" || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("err = %#v", err)
	}
	if !strings.Contains(pe.Error(), "panic in test.site: boom") {
		t.Fatalf("message = %q", pe.Error())
	}
	if err := Safe("ok", func() {}); err != nil {
		t.Fatalf("clean fn: %v", err)
	}
	if _, ok := AsPanic(errors.New("plain")); ok {
		t.Fatal("plain error reported as panic")
	}
}

// TestWatchdogSteps: the step budget trips at the boundary; nil is free.
func TestWatchdogSteps(t *testing.T) {
	w := NewWatchdog(0, 3)
	for i := 0; i < 3; i++ {
		if err := w.Step(1); err != nil {
			t.Fatalf("step %d tripped early: %v", i, err)
		}
	}
	err := w.Step(1)
	if err == nil || !IsWatchdog(err) {
		t.Fatalf("4th step: %v", err)
	}
	var nw *Watchdog
	if nw.Step(100) != nil || nw.Check() != nil {
		t.Fatal("nil watchdog must be free")
	}
}

// TestWatchdogWall: the wall-clock budget trips once elapsed.
func TestWatchdogWall(t *testing.T) {
	now := time.Unix(0, 0)
	w := &Watchdog{start: now, wall: time.Second, now: func() time.Time { return now }}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second)
	err := w.Check()
	if err == nil || !IsWatchdog(err) {
		t.Fatalf("after deadline: %v", err)
	}
	var we *WatchdogError
	if !errors.As(err, &we) || !we.Wall {
		t.Fatalf("wrong trip kind: %#v", err)
	}
}

// TestTransientMarking: MarkTransient wraps, unwraps, and nil-passes.
func TestTransientMarking(t *testing.T) {
	base := errors.New("io")
	m := MarkTransient(base)
	if !IsTransient(m) || !errors.Is(m, base) {
		t.Fatal("mark lost")
	}
	if IsTransient(base) || MarkTransient(nil) != nil {
		t.Fatal("unmarked/nil mishandled")
	}
}
