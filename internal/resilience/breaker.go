package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	StateClosed   BreakerState = iota // normal: all calls pass
	StateOpen                         // tripped: calls rejected until cooldown
	StateHalfOpen                     // probing: limited calls test recovery
)

func (s BreakerState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes one Breaker. The zero value applies the defaults
// noted per field.
type BreakerConfig struct {
	FailureThreshold int           // consecutive failures that open the circuit (<=0: 5)
	Cooldown         time.Duration // open → half-open wait (<=0: 5s)
	HalfOpenProbes   int           // concurrent probes allowed half-open (<=0: 1)

	Now func() time.Time // test seam; nil means time.Now
}

// Breaker is a consecutive-failure circuit breaker with half-open
// probes: FailureThreshold consecutive failures open it, rejecting
// calls for Cooldown; then up to HalfOpenProbes trial calls are let
// through — one success recloses the circuit, one failure reopens it
// and restarts the cooldown. The server keeps one per fixer
// configuration so a backend persistently failing for one persona/mode
// cannot burn admission slots that healthy configurations need.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	consec   int
	openedAt time.Time
	probes   int

	opens, rejected, failures, successes uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed. An open breaker whose
// cooldown has elapsed transitions to half-open and admits probes.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen {
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejected++
			return false
		}
		b.state = StateHalfOpen
		b.probes = 0
	}
	if b.state == StateHalfOpen {
		if b.probes >= b.cfg.HalfOpenProbes {
			b.rejected++
			return false
		}
		b.probes++
	}
	return true
}

// Success records a successful call; it recloses a half-open circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.successes++
	b.consec = 0
	if b.state != StateClosed {
		b.state = StateClosed
		b.probes = 0
	}
}

// Failure records a failed call. A failure while half-open reopens the
// circuit immediately; while closed, the consecutive-failure threshold
// applies.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.consec++
	if b.state == StateHalfOpen || (b.state == StateClosed && b.consec >= b.cfg.FailureThreshold) {
		if b.state != StateOpen {
			b.opens++
		}
		b.state = StateOpen
		b.openedAt = b.cfg.Now()
		b.probes = 0
	}
}

// State returns the breaker's current position (advancing open →
// half-open if the cooldown has elapsed, so observers see the same
// state a caller would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return StateHalfOpen
	}
	return b.state
}

// BreakerSnapshot is a breaker's observable state for /v1/stats.
type BreakerSnapshot struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               uint64 `json:"opens"`
	Rejected            uint64 `json:"rejected"`
	Failures            uint64 `json:"failures"`
	Successes           uint64 `json:"successes"`
}

// Snapshot returns the breaker's counters.
func (b *Breaker) Snapshot() BreakerSnapshot {
	st := b.State() // takes and releases the lock; advances cooldown
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:               st.String(),
		ConsecutiveFailures: b.consec,
		Opens:               b.opens,
		Rejected:            b.rejected,
		Failures:            b.failures,
		Successes:           b.successes,
	}
}
