package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic converted into an error: the serving
// layers isolate panics (a panicking agent run or handler becomes a
// typed 500 and a counter; the daemon stays up) and this type carries
// the evidence — where, what, and the stack at the recover site.
type PanicError struct {
	Site  string // which guard recovered it, e.g. "pipeline.job"
	Value any    // the value passed to panic()
	Stack []byte // debug.Stack() captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Site, e.Value)
}

// Recovered wraps a recover() value into a *PanicError with the current
// stack. Call it only from a deferred function while panicking.
func Recovered(site string, v any) *PanicError {
	return &PanicError{Site: site, Value: v, Stack: debug.Stack()}
}

// AsPanic extracts a *PanicError from err's chain, if any.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	ok := errors.As(err, &pe)
	return pe, ok
}

// IsPanic reports whether err's chain carries a recovered panic.
func IsPanic(err error) bool {
	_, ok := AsPanic(err)
	return ok
}

// Safe runs fn, converting a panic into a returned *PanicError. It is
// the guard for best-effort features (analyzer, sim check) that must
// never be request-fatal: on panic the feature's output is simply
// absent.
func Safe(site string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = Recovered(site, r)
		}
	}()
	fn()
	return nil
}
