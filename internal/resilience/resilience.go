// Package resilience holds the failure-survival primitives for the
// serving spine: bounded retry with exponential backoff and full
// jitter (plus per-request retry budgets), a per-configuration circuit
// breaker with half-open probes, panic capture that converts a
// panicking worker into a typed error, and wall-clock/step watchdogs
// that cancel runaway simulations.
//
// The package is deliberately leaf-level (stdlib only) so every layer —
// store, agent, sim, pipeline, server — can depend on it without
// cycles. Policy lives here; *where* faults appear is internal/fault's
// business, and *what degrades* is each layer's (see DESIGN.md §13 for
// the degradation ladder).
package resilience

import "errors"

// transientError marks an error as retryable. Retry policies only
// re-attempt transient errors; everything else fails fast.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err as retryable. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether any error in the chain was marked
// transient.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}
