package resilience

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Budget caps the total retries one request may spend across all the
// retryable calls it makes (an agent run retries the LLM once per
// iteration; without a budget a persistently flaky backend multiplies
// worst-case latency by MaxAttempts at every step). A nil *Budget is
// unlimited.
type Budget struct {
	remaining atomic.Int64
}

// NewBudget returns a budget of n retries.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.remaining.Store(int64(n))
	return b
}

// Take consumes one retry; it reports false when the budget is spent.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	return b.remaining.Add(-1) >= 0
}

// Remaining returns the retries left (0 when exhausted).
func (b *Budget) Remaining() int {
	if b == nil {
		return int(^uint(0) >> 1)
	}
	if n := b.remaining.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// RetryPolicy retries transient errors with exponential backoff and
// full jitter: sleep_k = U(0, min(MaxDelay, BaseDelay·2^k)). Full
// jitter desynchronizes retry herds — N callers that failed together do
// not re-arrive together. The zero value is usable and applies the
// defaults noted per field.
type RetryPolicy struct {
	MaxAttempts int           // total attempts including the first (<=0: 4)
	BaseDelay   time.Duration // backoff base (<=0: 2ms)
	MaxDelay    time.Duration // backoff cap (<=0: 100ms)
	Budget      *Budget       // shared retry budget (nil: unlimited)

	// Test seams. Nil means time.Sleep and the shared math/rand source
	// (only consulted after a fault, so an empty fault profile draws
	// nothing and determinism is preserved).
	Sleep func(time.Duration)
	Rand  func() float64
}

// RetryStats reports what one Do spent.
type RetryStats struct {
	Attempts  int  // calls made (>= 1 unless fn was never run)
	Retries   int  // re-attempts after transient failures
	Recovered bool // final success needed at least one retry
}

// Do runs fn until it succeeds, returns a non-transient error, exhausts
// MaxAttempts, or exhausts the budget — whichever comes first. The
// returned stats count attempts even when Do ultimately fails.
func (p RetryPolicy) Do(fn func() error) (RetryStats, error) {
	max := p.MaxAttempts
	if max <= 0 {
		max = 4
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	cap := p.MaxDelay
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	rnd := p.Rand
	if rnd == nil {
		rnd = rand.Float64
	}

	var st RetryStats
	for attempt := 1; ; attempt++ {
		st.Attempts = attempt
		err := fn()
		if err == nil {
			st.Recovered = attempt > 1
			return st, nil
		}
		if !IsTransient(err) || attempt >= max {
			return st, err
		}
		if !p.Budget.Take() {
			return st, fmt.Errorf("retry budget exhausted: %w", err)
		}
		st.Retries++
		ceil := base << (attempt - 1)
		if ceil > cap || ceil <= 0 {
			ceil = cap
		}
		sleep(time.Duration(rnd() * float64(ceil)))
	}
}
