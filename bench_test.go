package repro

// One benchmark per table and figure of the paper's evaluation section.
// Each b.N iteration regenerates the artifact at a reduced-but-faithful
// configuration and reports the headline numbers as benchmark metrics, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
// cmd/benchmark runs the full-size versions.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/curate"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/verilog"
)

// BenchmarkTable1 regenerates the fix-rate ablation grid (One-shot vs
// ReAct × RAG × feedback persona × LLM persona).
func BenchmarkTable1(b *testing.B) {
	entries, _ := curate.Build(curate.Options{Seed: 2024})
	b.ResetTimer()
	var last *bench.Table1Result
	for i := 0; i < b.N; i++ {
		last = bench.RunTable1(bench.Table1Config{Seed: 2024, Repeats: 2, Entries: entries})
	}
	if c, ok := last.Cell(core.ModeReAct, true, "Quartus", "gpt-3.5"); ok {
		b.ReportMetric(c.FixRate, "fixrate-react-rag-quartus")
	}
	if c, ok := last.Cell(core.ModeOneShot, false, "Quartus", "gpt-3.5"); ok {
		b.ReportMetric(c.FixRate, "fixrate-oneshot-quartus")
	}
}

// BenchmarkTable2 regenerates the pass@k before/after comparison on both
// VerilogEval suites.
func BenchmarkTable2(b *testing.B) {
	var last *bench.Table2Result
	for i := 0; i < b.N; i++ {
		last = bench.RunTable2(bench.Table2Config{Seed: 2024, SampleN: 4})
	}
	if row, ok := last.Row(dataset.SuiteMachine, "All"); ok {
		b.ReportMetric(row.Orig1, "machine-pass1-orig")
		b.ReportMetric(row.Fixed1, "machine-pass1-fixed")
	}
	if row, ok := last.Row(dataset.SuiteHuman, "All"); ok {
		b.ReportMetric(row.Orig1, "human-pass1-orig")
		b.ReportMetric(row.Fixed1, "human-pass1-fixed")
	}
}

// BenchmarkTable3 regenerates the RTLLM generalization result.
func BenchmarkTable3(b *testing.B) {
	var last *bench.Table3Result
	for i := 0; i < b.N; i++ {
		last = bench.RunTable3(bench.Table3Config{Seed: 2024, SampleN: 10})
	}
	b.ReportMetric(last.OrigSyntaxRate, "syntax-rate-orig")
	b.ReportMetric(last.FixedSyntaxRate, "syntax-rate-fixed")
}

// BenchmarkFigure4 regenerates the outcome-ring shares (the same pipeline
// as Table 2; reported metric is the compile-error collapse on Human).
func BenchmarkFigure4(b *testing.B) {
	var last *bench.Table2Result
	for i := 0; i < b.N; i++ {
		last = bench.RunTable2(bench.Table2Config{
			Seed: 2024, SampleN: 4, Suites: []dataset.Suite{dataset.SuiteHuman}})
	}
	rings := last.Fig4[dataset.SuiteHuman]
	b.ReportMetric(rings.Inner["compile-error-easy"]+rings.Inner["compile-error-hard"], "compile-share-before")
	b.ReportMetric(rings.Outer["compile-error-easy"]+rings.Outer["compile-error-hard"], "compile-share-after")
}

// BenchmarkFigure7 regenerates the ReAct iteration histogram.
func BenchmarkFigure7(b *testing.B) {
	entries, _ := curate.Build(curate.Options{Seed: 2024})
	fixer, err := core.New(core.Options{
		CompilerName: "quartus", RAG: true, Mode: core.ModeReAct, Seed: 2024})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var hist [11]int
	for i := 0; i < b.N; i++ {
		hist = [11]int{}
		for _, e := range entries {
			tr := fixer.Fix("main.v", e.Code, e.SampleSeed)
			if tr.Success && tr.Iterations < len(hist) {
				hist[tr.Iterations]++
			}
		}
	}
	total, first := 0, hist[1]
	for i := 1; i < len(hist); i++ {
		total += hist[i]
	}
	if total > 0 {
		b.ReportMetric(float64(first)/float64(total), "single-iteration-share")
	}
}

// BenchmarkAblationRetrievers compares retrieval strategies (exact-tag vs
// fuzzy vs keyword vs no RAG) under the full configuration.
func BenchmarkAblationRetrievers(b *testing.B) {
	entries, _ := curate.Build(curate.Options{Seed: 2024})
	b.ResetTimer()
	var last []bench.AblationResult
	for i := 0; i < b.N; i++ {
		last = bench.RunRetrieverAblation(2024, 1, entries, 0, false)
	}
	for _, r := range last {
		b.ReportMetric(r.FixRate, "fixrate-"+r.Name)
	}
}

// BenchmarkAblationIterationBudget sweeps the ReAct budget 1..10.
func BenchmarkAblationIterationBudget(b *testing.B) {
	entries, _ := curate.Build(curate.Options{Seed: 2024})
	b.ResetTimer()
	var last []bench.AblationResult
	for i := 0; i < b.N; i++ {
		last = bench.RunIterationBudgetAblation(2024, 1, 10, entries, 0, false)
	}
	b.ReportMetric(last[0].FixRate, "fixrate-budget1")
	b.ReportMetric(last[len(last)-1].FixRate, "fixrate-budget10")
}

// BenchmarkAblationGuidanceSize truncates the curated guidance DB.
func BenchmarkAblationGuidanceSize(b *testing.B) {
	entries, _ := curate.Build(curate.Options{Seed: 2024})
	b.ResetTimer()
	var last []bench.AblationResult
	for i := 0; i < b.N; i++ {
		last = bench.RunGuidanceSizeAblation(2024, 1, entries, 0, false)
	}
	b.ReportMetric(last[len(last)-1].FixRate-last[0].FixRate, "rag-gain-full-db")
}

// BenchmarkSimFeedback measures the paper's §5 extension: limited gains
// from simulation-error feedback beyond syntax fixing.
func BenchmarkSimFeedback(b *testing.B) {
	var last *bench.SimFeedbackResult
	for i := 0; i < b.N; i++ {
		last = bench.RunSimFeedback(2024, 4)
	}
	b.ReportMetric(last.Pass1AfterSimRepair-last.Pass1AfterSyntax, "simfeedback-gain")
	b.ReportMetric(last.EasyGain, "simfeedback-gain-easy")
	b.ReportMetric(last.HardGain, "simfeedback-gain-hard")
}

// BenchmarkCuration measures the VerilogEval-syntax pipeline (sampling →
// filtering → DBSCAN clustering → selection).
func BenchmarkCuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, _ := curate.Build(curate.Options{Seed: int64(i)})
		if len(entries) != curate.TargetSize {
			b.Fatalf("curated %d entries", len(entries))
		}
	}
}

// BenchmarkPipelineSpeedup times the same Table 1 slice (ReAct + RAG +
// Quartus, the most expensive cell) through a 1-worker and a NumCPU-worker
// pool and reports the wall-clock ratio. The aggregates are asserted
// identical, so the metric isolates pure scheduling gain.
func BenchmarkPipelineSpeedup(b *testing.B) {
	entries, _ := curate.Build(curate.Options{Seed: 2024})
	cfg := bench.Table1Config{Seed: 2024, Repeats: 2, Entries: entries}
	combo := func(workers int) *bench.Table1Result {
		c := cfg
		c.Workers = workers
		return bench.RunTable1(c)
	}
	b.ResetTimer()
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		one := combo(1)
		t1 := time.Now()
		many := combo(runtime.NumCPU())
		t2 := time.Now()
		serial += t1.Sub(t0)
		parallel += t2.Sub(t1)
		if one.Render() != many.Render() || one.RenderFigure7() != many.RenderFigure7() {
			b.Fatal("parallel run is not byte-identical to serial run")
		}
	}
	b.ReportMetric(float64(runtime.NumCPU()), "workers")
	b.ReportMetric(serial.Seconds()/float64(b.N), "serial-sec/op")
	b.ReportMetric(parallel.Seconds()/float64(b.N), "parallel-sec/op")
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
}

// TestPipelineTableDeterminism is the acceptance gate for the evaluation
// pipeline: every table must render byte-identically for 1 worker and for
// a larger pool.
func TestPipelineTableDeterminism(t *testing.T) {
	entries, _ := curate.Build(curate.Options{Seed: 2024})
	slice := entries
	if len(slice) > 8 {
		slice = slice[:8]
	}
	t1a := bench.RunTable1(bench.Table1Config{Seed: 2024, Repeats: 2, Entries: slice, Workers: 1})
	t1b := bench.RunTable1(bench.Table1Config{Seed: 2024, Repeats: 2, Entries: slice, Workers: 7})
	if t1a.Render() != t1b.Render() || t1a.RenderFigure7() != t1b.RenderFigure7() {
		t.Error("Table 1 output differs across worker counts")
	}
	t2a := bench.RunTable2(bench.Table2Config{Seed: 2024, SampleN: 3, MaxProblems: 6, Workers: 1})
	t2b := bench.RunTable2(bench.Table2Config{Seed: 2024, SampleN: 3, MaxProblems: 6, Workers: 5})
	if t2a.Render() != t2b.Render() || t2a.RenderFigure4() != t2b.RenderFigure4() {
		t.Error("Table 2 output differs across worker counts")
	}
	t3a := bench.RunTable3(bench.Table3Config{Seed: 2024, SampleN: 4, Workers: 1})
	t3b := bench.RunTable3(bench.Table3Config{Seed: 2024, SampleN: 4, Workers: 3})
	if t3a.Render() != t3b.Render() {
		t.Error("Table 3 output differs across worker counts")
	}
}

// TestCacheTableDeterminism is the acceptance gate for the memoization
// layer: every table and ablation must render byte-identically with the
// cache on and off, at more than one worker count.
func TestCacheTableDeterminism(t *testing.T) {
	entries, _ := curate.Build(curate.Options{Seed: 2024})
	slice := entries
	if len(slice) > 8 {
		slice = slice[:8]
	}
	for _, workers := range []int{1, 6} {
		off := bench.RunTable1(bench.Table1Config{Seed: 2024, Repeats: 2, Entries: slice, Workers: workers})
		on := bench.RunTable1(bench.Table1Config{Seed: 2024, Repeats: 2, Entries: slice, Workers: workers, Cache: true})
		if off.Render() != on.Render() || off.RenderFigure7() != on.RenderFigure7() {
			t.Errorf("Table 1 output differs with cache on vs off at %d workers", workers)
		}
	}
	t2off := bench.RunTable2(bench.Table2Config{Seed: 2024, SampleN: 3, MaxProblems: 6, Workers: 5})
	t2on := bench.RunTable2(bench.Table2Config{Seed: 2024, SampleN: 3, MaxProblems: 6, Workers: 5, Cache: true})
	if t2off.Render() != t2on.Render() || t2off.RenderFigure4() != t2on.RenderFigure4() {
		t.Error("Table 2 output differs with cache on vs off")
	}
	t3off := bench.RunTable3(bench.Table3Config{Seed: 2024, SampleN: 4, Workers: 3})
	t3on := bench.RunTable3(bench.Table3Config{Seed: 2024, SampleN: 4, Workers: 3, Cache: true})
	if t3off.Render() != t3on.Render() {
		t.Error("Table 3 output differs with cache on vs off")
	}
	ablOff := bench.RunRetrieverAblation(2024, 1, slice, 3, false)
	ablOn := bench.RunRetrieverAblation(2024, 1, slice, 3, true)
	if bench.RenderAblation("x", ablOff) != bench.RenderAblation("x", ablOn) {
		t.Error("retriever ablation differs with cache on vs off")
	}
	gsOff := bench.RunGuidanceSizeAblation(2024, 1, slice, 3, false)
	gsOn := bench.RunGuidanceSizeAblation(2024, 1, slice, 3, true)
	if bench.RenderAblation("x", gsOff) != bench.RenderAblation("x", gsOn) {
		t.Error("guidance-size ablation differs with cache on vs off")
	}
}

// BenchmarkTable1Cached regenerates the Table 1 grid with the memo layer
// on, for an apples-to-apples comparison with BenchmarkTable1.
func BenchmarkTable1Cached(b *testing.B) {
	entries, _ := curate.Build(curate.Options{Seed: 2024})
	b.ResetTimer()
	var last *bench.Table1Result
	for i := 0; i < b.N; i++ {
		last = bench.RunTable1(bench.Table1Config{Seed: 2024, Repeats: 2, Entries: entries, Cache: true})
	}
	if c, ok := last.Cell(core.ModeReAct, true, "Quartus", "gpt-3.5"); ok {
		b.ReportMetric(c.FixRate, "fixrate-react-rag-quartus")
	}
}

// ---------- component micro-benchmarks ----------

const benchSource = `module top_module (
	input clk,
	input reset,
	input [31:0] in,
	output reg [31:0] out
);
	always @(posedge clk) begin
		if (reset)
			out <= 0;
		else begin
			for (int i = 0; i < 32; i = i + 1)
				out[i] <= in[31 - i];
		end
	end
endmodule
`

// BenchmarkParse measures the frontend lexer+parser.
func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, diags := verilog.Parse(benchSource); diags.HasErrors() {
			b.Fatal(diags.Summary())
		}
	}
}

// BenchmarkCompileQuartus measures the full frontend plus Quartus-style
// log rendering.
func BenchmarkCompileQuartus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := (compiler.Quartus{}).Compile("bench.v", benchSource); !res.Ok {
			b.Fatal(res.Log)
		}
	}
}

// BenchmarkSimulateCounter measures the cycle simulator on a testbench
// run of the 8-bit counter problem.
func BenchmarkSimulateCounter(b *testing.B) {
	p, ok := dataset.ByID(dataset.SuiteHuman, "counter_up_w8")
	if !ok {
		b.Fatal("problem missing")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := p.Check(p.RefSource, newRand(int64(i)))
		if err != nil || !res.Passed() {
			b.Fatalf("reference failed: %v %v", err, res)
		}
	}
}

// BenchmarkReActFix measures one full agent session on the paper's Fig. 5
// example.
func BenchmarkReActFix(b *testing.B) {
	fixer, err := core.New(core.Options{
		CompilerName: "quartus", RAG: true, Mode: core.ModeReAct, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	src := `module top_module (
	input [99:0] in,
	output reg [99:0] out
);
	always @(posedge clk) begin
		for (int i = 0; i < 100; i = i + 1)
			out[i] <= in[99 - i];
	end
endmodule
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fixer.Fix("vector100r.sv", src, int64(i))
	}
}

// BenchmarkGenerate measures the simulated-LLM sample generator.
func BenchmarkGenerate(b *testing.B) {
	p, _ := dataset.ByID(dataset.SuiteHuman, "vector_reverse_w100")
	rates := llm.RatesFor("human", "hard")
	rng := newRand(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		llm.Generate(p.RefSource, rates, rng)
	}
}
